"""Tests for partial (pread-style) BLOB reads."""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.fuse import BlobFuse


def small_config(**overrides):
    defaults = dict(device_pages=65536, wal_pages=1024, catalog_pages=256,
                    buffer_pool_pages=16384)
    defaults.update(overrides)
    return EngineConfig(**defaults)


@pytest.fixture
def db():
    database = BlobDB(small_config())
    database.create_table("t")
    return database


def striped(n: int) -> bytes:
    return bytes(i % 251 for i in range(n))


class TestReadRange:
    def test_range_matches_slice(self, db):
        payload = striped(500_000)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", payload)
        for offset, length in ((0, 10), (4096, 4096), (123_456, 77_777),
                               (499_990, 100), (0, 500_000)):
            assert db.read_blob_range("t", b"k", offset, length) == \
                payload[offset:offset + length]

    def test_range_clamps_at_eof(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"0123456789")
        assert db.read_blob_range("t", b"k", 8, 100) == b"89"
        assert db.read_blob_range("t", b"k", 100, 10) == b""
        assert db.read_blob_range("t", b"k", 0, 0) == b""

    def test_negative_arguments_rejected(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"x")
        with pytest.raises(ValueError):
            db.read_blob_range("t", b"k", -1, 5)
        with pytest.raises(ValueError):
            db.read_blob_range("t", b"k", 0, -5)

    def test_small_read_touches_only_overlapping_extents(self, db):
        """The point: a 4 KB read of a 40 MB BLOB must not load 40 MB."""
        payload = striped(40 * 1024 * 1024)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"big", payload)
        db.pool.drop_all_volatile()  # cold pool
        before = db.device.stats.bytes_read
        got = db.read_blob_range("t", b"big", 20 * 1024 * 1024, 4096)
        assert got == payload[20 * 1024 * 1024:20 * 1024 * 1024 + 4096]
        read = db.device.stats.bytes_read - before
        # One mid-sequence extent, not the whole BLOB.
        assert read < 40 * 1024 * 1024 / 2
        assert read >= 4096

    def test_range_spanning_extent_boundary(self, db):
        payload = striped(100_000)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", payload)
        # 12288 is the tier-0/1|2 boundary region for 4 KiB pages.
        assert db.read_blob_range("t", b"k", 12_000, 2000) == \
            payload[12_000:14_000]

    def test_range_on_tail_extent_blob(self, db):
        payload = striped(6 * 4096)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", payload, use_tail=True)
        assert db.read_blob_range("t", b"k", 5 * 4096, 4096) == \
            payload[5 * 4096:]


class TestFuseRangedReads:
    def test_fuse_read_is_partial(self, db):
        payload = striped(8 * 1024 * 1024)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"huge.bin", payload)
        db.pool.drop_all_volatile()
        fuse = BlobFuse(db)
        fh = fuse.open("/t/huge.bin")
        before = db.device.stats.bytes_read
        assert fuse.read(fh, 4096, 1_000_000) == \
            payload[1_000_000:1_004_096]
        assert db.device.stats.bytes_read - before < len(payload) / 2
        fuse.release(fh)

    def test_sequential_file_consumption_still_correct(self, db):
        from repro.fuse import FuseMount
        payload = striped(300_000)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"f", payload)
        mount = FuseMount(db)
        with mount.open("/t/f") as f:
            chunks = []
            while chunk := f.read(65536):
                chunks.append(chunk)
        assert b"".join(chunks) == payload
