"""Crash & recovery tests (Section III-C BLOB recoverability).

The decisive scenarios: content committed before a crash must survive;
uncommitted work must vanish; and a crash in the window between WAL
durability and the extent flush must be detected by the SHA-256
validation and rolled back (the "failed transaction" undo list).
"""

import pytest

from repro.db import BlobDB, EngineConfig


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=256,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def crash_and_recover(db):
    config = db.config
    device = db.crash()
    return BlobDB.recover(device, config)


class TestCommittedDataSurvives:
    def test_blob_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("image")
        payload = bytes(range(256)) * 300
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"cat.jpg", payload)
        recovered = crash_and_recover(db)
        assert recovered.read_blob("image", b"cat.jpg") == payload
        assert recovered.failed_txns == []

    def test_inline_value_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("kv")
        with db.transaction() as txn:
            db.put(txn, "kv", b"k", b"inline-value")
        recovered = crash_and_recover(db)
        assert recovered.get("kv", b"k") == b"inline-value"

    def test_multiple_tables_and_blobs(self):
        db = BlobDB(small_config())
        db.create_table("image")
        db.create_table("document")
        blobs = {(t, bytes([i])): bytes([i]) * (1000 * (i + 1))
                 for t in ("image", "document") for i in range(5)}
        for (table, key), data in blobs.items():
            with db.transaction() as txn:
                db.put_blob(txn, table, key, data)
        recovered = crash_and_recover(db)
        for (table, key), data in blobs.items():
            assert recovered.read_blob(table, key) == data

    def test_committed_delete_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"doomed")
        with db.transaction() as txn:
            db.delete_blob(txn, "image", b"k")
        recovered = crash_and_recover(db)
        assert not recovered.exists("image", b"k")

    def test_committed_append_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"g", b"part1|")
        with db.transaction() as txn:
            db.append_blob(txn, "image", b"g", b"part2")
        recovered = crash_and_recover(db)
        assert recovered.read_blob("image", b"g") == b"part1|part2"

    def test_tables_created_after_checkpoint_survive(self):
        db = BlobDB(small_config())
        db.create_table("early")
        db.checkpoint()
        db.create_table("late")
        with db.transaction() as txn:
            db.put_blob(txn, "late", b"k", b"v")
        recovered = crash_and_recover(db)
        assert "late" in recovered.list_tables()
        assert recovered.read_blob("late", b"k") == b"v"


class TestUncommittedDataVanishes:
    def test_open_transaction_lost(self):
        db = BlobDB(small_config())
        db.create_table("image")
        txn = db.begin()
        db.put_blob(txn, "image", b"limbo", b"never committed")
        # No commit; crash now.
        recovered = crash_and_recover(db)
        assert not recovered.exists("image", b"limbo")

    def test_aborted_transaction_stays_aborted(self):
        db = BlobDB(small_config())
        db.create_table("image")
        txn = db.begin()
        db.put_blob(txn, "image", b"k", b"aborted")
        db.abort(txn)
        recovered = crash_and_recover(db)
        assert not recovered.exists("image", b"k")

    def test_uncommitted_extents_are_reclaimable(self):
        """Allocations of lost transactions leave no holes."""
        config = small_config()
        db = BlobDB(config)
        db.create_table("image")
        txn = db.begin()
        db.put_blob(txn, "image", b"limbo", b"x" * 100_000)
        recovered = crash_and_recover(db)
        # The recovered engine can allocate the same space again.
        with recovered.transaction() as txn2:
            recovered.put_blob(txn2, "image", b"fresh", b"y" * 100_000)
        assert recovered.read_blob("image", b"fresh") == b"y" * 100_000


class TestShaValidationWindow:
    def _crash_between_wal_and_extent_flush(self, db, table, key, data):
        """Commit whose extent flush never reaches the device."""
        txn = db.begin()
        db.put_blob(txn, table, key, data)
        original = db.pool.flush_batch
        db.pool.flush_batch = lambda *a, **k: 0  # extents never flushed
        try:
            db.commit(txn)
        finally:
            db.pool.flush_batch = original

    def test_failed_blob_txn_is_undone(self):
        db = BlobDB(small_config())
        db.create_table("image")
        self._crash_between_wal_and_extent_flush(db, "image", b"torn",
                                                 b"t" * 50_000)
        recovered = crash_and_recover(db)
        # Analysis found the digest mismatch: txn on the undo list,
        # its effects absent (Section III-C).
        assert recovered.failed_txns
        assert not recovered.exists("image", b"torn")

    def test_failed_txn_extents_are_reusable(self):
        db = BlobDB(small_config())
        db.create_table("image")
        self._crash_between_wal_and_extent_flush(db, "image", b"torn",
                                                 b"t" * 50_000)
        recovered = crash_and_recover(db)
        with recovered.transaction() as txn:
            recovered.put_blob(txn, "image", b"ok", b"o" * 50_000)
        assert recovered.read_blob("image", b"ok") == b"o" * 50_000

    def test_healthy_txns_unaffected_by_failed_one(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"good", b"g" * 10_000)
        self._crash_between_wal_and_extent_flush(db, "image", b"torn",
                                                 b"t" * 50_000)
        recovered = crash_and_recover(db)
        assert recovered.read_blob("image", b"good") == b"g" * 10_000
        assert not recovered.exists("image", b"torn")


class TestCheckpointing:
    def test_recovery_from_snapshot_plus_wal_tail(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"before", b"b" * 5000)
        db.checkpoint()
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"after", b"a" * 5000)
        recovered = crash_and_recover(db)
        assert recovered.read_blob("image", b"before") == b"b" * 5000
        assert recovered.read_blob("image", b"after") == b"a" * 5000

    def test_free_lists_survive_checkpoint_and_crash(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            state = db.put_blob(txn, "image", b"k", b"x" * 50_000)
        first_pid = state.extent_pids[0]
        with db.transaction() as txn:
            db.delete_blob(txn, "image", b"k")
        db.checkpoint()
        recovered = crash_and_recover(db)
        with recovered.transaction() as txn:
            state2 = recovered.put_blob(txn, "image", b"k2", b"y" * 50_000)
        assert state2.extent_pids[0] == first_pid  # freed space reused

    def test_wal_pressure_triggers_checkpoint(self):
        db = BlobDB(small_config(wal_pages=64,
                                 checkpoint_threshold=0.3))
        db.create_table("kv")
        for i in range(200):
            with db.transaction() as txn:
                db.put(txn, "kv", b"k%d" % i, b"v" * 400)
        assert db.checkpoints_taken >= 1
        recovered = crash_and_recover(db)
        for i in range(200):
            assert recovered.get("kv", b"k%d" % i) == b"v" * 400

    def test_checkpoint_with_active_txn_rejected(self):
        from repro.db.errors import TransactionStateError
        db = BlobDB(small_config())
        db.create_table("image")
        txn = db.begin()
        with pytest.raises(TransactionStateError):
            db.checkpoint()
        db.abort(txn)

    def test_double_crash_recover(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"stable")
        recovered1 = crash_and_recover(db)
        with recovered1.transaction() as txn:
            recovered1.put_blob(txn, "image", b"k2", b"second life")
        recovered2 = crash_and_recover(recovered1)
        assert recovered2.read_blob("image", b"k") == b"stable"
        assert recovered2.read_blob("image", b"k2") == b"second life"


class TestPhyslogRecovery:
    def test_physlog_redoes_content_from_wal_chunks(self):
        """Physlog content lives in the WAL until eviction; a crash right
        after commit must restore it from the chunk records."""
        config = small_config(log_policy="physlog",
                              wal_pages=1024, wal_buffer_bytes=1 << 16)
        db = BlobDB(config)
        db.create_table("image")
        payload = bytes(range(256)) * 150
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", payload)
        # Frames are dirty and unflushed: content is only in the WAL.
        recovered = crash_and_recover(db)
        assert recovered.read_blob("image", b"k") == payload

    def test_physlog_writes_content_twice_by_checkpoint(self):
        config = small_config(log_policy="physlog", wal_pages=1024)
        db = BlobDB(config)
        db.create_table("image")
        payload = b"2x" * 25_000
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", payload)
        db.checkpoint()  # flushes the dirty frames: the second write
        cats = db.device.stats.bytes_written_by_category
        assert cats["wal"] >= len(payload)       # first copy: WAL chunks
        assert cats["data"] >= len(payload)      # second copy: extents

    def test_grow_after_recovery_falls_back_to_rehash(self):
        """FastSha256 live states die in a crash; growth must still work."""
        db = BlobDB(small_config(hasher="fast"))
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"g", b"pre-crash|")
        recovered = crash_and_recover(db)
        with recovered.transaction() as txn:
            recovered.append_blob(txn, "image", b"g", b"post-crash")
        import hashlib
        content = recovered.read_blob("image", b"g")
        assert content == b"pre-crash|post-crash"
        state = recovered.get_state("image", b"g")
        assert state.sha256 == hashlib.sha256(content).digest()


class TestRecoveryOfUpdates:
    def test_delta_update_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"u", b"\x00" * 40_000)
        with db.transaction() as txn:
            db.update_blob_range(txn, "image", b"u", 100, b"DELTA",
                                 scheme="delta")
        recovered = crash_and_recover(db)
        content = recovered.read_blob("image", b"u")
        assert content[100:105] == b"DELTA"
        assert recovered.failed_txns == []

    def test_clone_update_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"u", b"\x01" * 40_000)
        with db.transaction() as txn:
            db.update_blob_range(txn, "image", b"u", 0, b"CLONE",
                                 scheme="clone")
        recovered = crash_and_recover(db)
        assert recovered.read_blob("image", b"u")[:5] == b"CLONE"
