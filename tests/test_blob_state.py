"""Tests for Blob State serialization and geometry (Section III-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blob_state import PREFIX_LEN, BlobState
from repro.core.extent import TailExtent
from repro.core.tier import ExtentTier
from repro.sha.sha256 import Sha256


def make_state(data: bytes, extent_pids=(), tail=None) -> BlobState:
    hasher = Sha256(data)
    return BlobState(
        size=len(data),
        sha256=hasher.digest(),
        sha_state=hasher.state(),
        prefix=data[:PREFIX_LEN],
        extent_pids=tuple(extent_pids),
        tail_extent=tail,
    )


class TestValidation:
    def test_valid_state(self):
        state = make_state(b"hello", extent_pids=(4,))
        assert state.size == 5
        assert state.num_extents == 1

    def test_sha_must_be_32_bytes(self):
        good = make_state(b"x")
        with pytest.raises(ValueError):
            BlobState(size=1, sha256=b"short", sha_state=good.sha_state,
                      prefix=b"x")

    def test_prefix_must_match_size(self):
        good = make_state(b"x" * 100)
        with pytest.raises(ValueError):
            BlobState(size=100, sha256=good.sha256, sha_state=good.sha_state,
                      prefix=b"x" * 10)  # must be 32 for a 100-byte BLOB

    def test_negative_size_rejected(self):
        good = make_state(b"x")
        with pytest.raises(ValueError):
            BlobState(size=-1, sha256=good.sha256, sha_state=good.sha_state,
                      prefix=b"")


class TestSerialization:
    def test_roundtrip_no_tail(self):
        state = make_state(b"payload" * 100, extent_pids=(4, 10, 15))
        restored = BlobState.deserialize(state.serialize())
        assert restored == state

    def test_roundtrip_with_tail(self):
        state = make_state(b"p" * 5000, extent_pids=(4, 10),
                           tail=TailExtent(pid=15, npages=3))
        restored = BlobState.deserialize(state.serialize())
        assert restored == state
        assert restored.tail_extent == TailExtent(pid=15, npages=3)

    def test_roundtrip_empty_extents(self):
        state = make_state(b"tiny")
        assert BlobState.deserialize(state.serialize()) == state

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            BlobState.deserialize(b"\x00" * 64)

    def test_short_blob_prefix_is_whole_content(self):
        state = make_state(b"short")
        assert state.prefix == b"short"
        restored = BlobState.deserialize(state.serialize())
        assert restored.prefix == b"short"

    @given(st.binary(min_size=0, max_size=200),
           st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data, pids):
        state = make_state(data, extent_pids=pids)
        assert BlobState.deserialize(state.serialize()) == state

    def test_compact_metadata_for_huge_blobs(self):
        """Paper: ~801-byte Blob State refers to a >16 TB BLOB (8 tiers/level)."""
        tiers = ExtentTier(tiers_per_level=8)
        n_extents = 0
        total_pages = 0
        while total_pages * 4096 < 16 * (1 << 40):
            total_pages += tiers.size(n_extents)
            n_extents += 1
        state = make_state(b"z" * 100, extent_pids=tuple(range(n_extents)))
        # Our encoding adds the 104-byte resumable-SHA state on top of the
        # paper's layout; the point is O(100 B) metadata for a 16 TB BLOB.
        assert state.serialized_size() < 1024


class TestGeometry:
    def test_page_ranges_follow_tier_table(self):
        tiers = ExtentTier(tiers_per_level=10)
        state = make_state(b"x" * 20000, extent_pids=(4, 10, 15))
        assert state.page_ranges(tiers) == [(4, 1), (10, 2), (15, 4)]

    def test_page_ranges_include_tail(self):
        tiers = ExtentTier(tiers_per_level=10)
        state = make_state(b"x" * 20000, extent_pids=(4, 10),
                           tail=TailExtent(pid=15, npages=3))
        assert state.page_ranges(tiers) == [(4, 1), (10, 2), (15, 3)]
        assert state.num_extents == 2  # tail not counted, as in the paper

    def test_capacity_and_used_pages(self):
        tiers = ExtentTier(tiers_per_level=10)
        state = make_state(b"x" * 20000, extent_pids=(4, 10, 15))
        assert state.capacity_pages(tiers) == 7
        assert state.used_pages(page_size=4096) == 5

    def test_with_content_update(self):
        old = make_state(b"old")
        hasher = Sha256(b"newcontent")
        new = old.with_content(size=10, sha256=hasher.digest(),
                               sha_state=hasher.state(), prefix=b"newcontent")
        assert new.size == 10
        assert old.size == 3  # immutable original

    def test_with_extents_update(self):
        old = make_state(b"x", extent_pids=(1,))
        new = old.with_extents((1, 2, 3))
        assert new.extent_pids == (1, 2, 3)
        assert old.extent_pids == (1,)
