"""Tests for the runtime latch/WAL-order sanitizer."""

import pytest

from repro.analysis import (
    LatchCycleViolation,
    LatchViolation,
    Sanitizer,
    WalOrderViolation,
    attach_sanitizer,
)
from repro.buffer.frames import ExtentFrame
from repro.buffer.vmcache import VmcachePool
from repro.sched.loop import Delay, EventLoop
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe
from repro.wal.records import TxnCommitRecord
from repro.wal.writer import WalWriter

PAGE = 4096


def make_pool(capacity_pages=64, device_pages=4096):
    model = CostModel()
    device = SimulatedNVMe(model, capacity_pages=device_pages)
    return VmcachePool(device, model, capacity_pages)


class TestLatchDiscipline:
    def test_write_without_latch_raises(self):
        san = Sanitizer()
        frame = ExtentFrame(head_pid=8, npages=1, page_size=PAGE, san=san)
        with pytest.raises(LatchViolation):
            frame.write_at(0, b"x")

    def test_read_without_latch_raises(self):
        san = Sanitizer()
        frame = ExtentFrame(head_pid=8, npages=1, page_size=PAGE, san=san)
        with pytest.raises(LatchViolation):
            san.on_frame_read(frame)

    def test_pinned_write_is_clean(self):
        san = Sanitizer()
        frame = ExtentFrame(head_pid=8, npages=1, page_size=PAGE,
                            pins=1, san=san)
        frame.write_at(0, b"x")
        assert san.stats.frame_writes == 1
        assert san.stats.violations == 0

    def test_protected_write_is_clean(self):
        san = Sanitizer()
        frame = ExtentFrame(head_pid=8, npages=1, page_size=PAGE,
                            prevent_evict=True, san=san)
        frame.write_at(0, b"x")
        assert san.stats.violations == 0

    def test_pool_fetch_pins_then_unpin_exposes(self):
        pool = make_pool()
        pool.allocate_frame(0, 2, prevent_evict=False)
        san = attach_sanitizer(pool.model)
        frames = pool.fetch_extents([(0, 2)], pin=True)
        frames[0].write_at(0, b"ok")          # latched: clean
        pool.unpin(frames)
        with pytest.raises(LatchViolation):
            frames[0].write_at(0, b"racy")    # latch dropped: violation
        assert san.stats.latch_acquires == 1
        assert san.stats.latch_releases == 1

    def test_collect_mode_records_instead_of_raising(self):
        san = Sanitizer(mode="collect")
        frame = ExtentFrame(head_pid=8, npages=1, page_size=PAGE, san=san)
        frame.write_at(0, b"x")
        frame.write_at(1, b"y")
        assert san.stats.violations == 2
        assert all(kind == "LatchViolation"
                   for kind, _, _ in san.violations)
        assert "violations       2" in san.format_summary()


class TestWalOrdering:
    def test_writeback_before_flush_violates(self):
        san = Sanitizer()
        san.note_page_coverage([40], lsn=100)
        with pytest.raises(WalOrderViolation):
            san.on_data_writeback(40)

    def test_writeback_after_flush_is_clean(self):
        san = Sanitizer()
        san.note_page_coverage([40], lsn=100)
        san.on_wal_durable(100)
        san.on_data_writeback(40)
        assert san.stats.violations == 0

    def test_uncovered_page_is_clean(self):
        san = Sanitizer()
        san.on_data_writeback(7)
        assert san.stats.violations == 0

    def test_dropped_frame_clears_coverage(self):
        san = Sanitizer()
        san.note_page_coverage([40], lsn=100)
        san.on_frame_drop(40)
        san.on_data_writeback(40)
        assert san.stats.violations == 0

    def test_real_wal_and_pool_reorder(self):
        """Deliberately reorder write-back before the WAL flush."""
        pool = make_pool()
        san = attach_sanitizer(pool.model)
        wal = WalWriter(pool.device, pool.model, region_pid=1024,
                        region_pages=64)
        frame = pool.allocate_frame(0, 1)
        frame.write_at(0, b"payload")
        wal.append(TxnCommitRecord(txn_id=1))
        san.note_page_coverage([frame.head_pid], wal.lsn)
        # Wrong order: data before log.
        with pytest.raises(WalOrderViolation):
            pool.write_back(frame)

    def test_real_wal_and_pool_correct_order(self):
        pool = make_pool()
        san = attach_sanitizer(pool.model)
        wal = WalWriter(pool.device, pool.model, region_pid=1024,
                        region_pages=64)
        frame = pool.allocate_frame(0, 1)
        frame.write_at(0, b"payload")
        wal.append(TxnCommitRecord(txn_id=1))
        san.note_page_coverage([frame.head_pid], wal.lsn)
        wal.group_commit_flush()              # log first...
        pool.write_back(frame)                # ...then data
        assert san.stats.violations == 0
        assert san.stats.wal_flushes >= 1
        assert san.stats.writebacks_checked == 1

    def test_non_data_writeback_not_checked(self):
        pool = make_pool()
        san = attach_sanitizer(pool.model)
        frame = pool.allocate_frame(0, 1)
        frame.write_at(0, b"log bytes")
        san.note_page_coverage([0], lsn=999)
        pool.write_back(frame, category="wal")  # WAL region, not data
        assert san.stats.violations == 0


class TestLatchOrder:
    def test_inverted_acquisition_order_cycles(self):
        san = Sanitizer()
        san.on_latch_acquire([1])
        san.on_latch_acquire([2])             # order 1 -> 2
        san.on_latch_release(2)
        san.on_latch_release(1)
        san.on_latch_acquire([2])
        with pytest.raises(LatchCycleViolation):
            san.on_latch_acquire([1])         # order 2 -> 1: cycle

    def test_consistent_order_is_clean(self):
        san = Sanitizer()
        for _ in range(3):
            san.on_latch_acquire([1])
            san.on_latch_acquire([2])
            san.on_latch_release(2)
            san.on_latch_release(1)
        assert san.stats.violations == 0

    def test_same_batch_is_unordered(self):
        san = Sanitizer()
        san.on_latch_acquire([1, 2])
        san.on_latch_release(1)
        san.on_latch_release(2)
        san.on_latch_acquire([2, 1])          # reversed, same batch: fine
        assert san.stats.violations == 0

    def test_cross_worker_inversion_detected(self):
        san = Sanitizer()
        san.set_worker(0)
        san.on_latch_acquire([1])
        san.on_latch_acquire([2])             # worker 0: order 1 -> 2
        san.set_worker(1)
        san.on_latch_acquire([2])
        with pytest.raises(LatchCycleViolation):
            san.on_latch_acquire([1])         # worker 1: order 2 -> 1


class TestOrderGraphBounds:
    """The latch-order graph is bounded (no unbounded growth across
    long runs); overflow is counted, never silent."""

    def test_node_cap_drops_edges_and_counts(self):
        san = Sanitizer(mode="collect", max_order_nodes=4)
        san.on_latch_acquire([1])
        san.on_latch_acquire([2])             # 1 -> 2 recorded
        san.on_latch_release(2)
        san.on_latch_release(1)
        san.on_latch_acquire([3])
        san.on_latch_acquire([4])             # 3 -> 4 fills the cap
        san.on_latch_release(4)
        san.on_latch_release(3)
        san.on_latch_acquire([5])
        san.on_latch_acquire([6])             # 5 -> 6 over the cap
        assert san.order_overflows == 1
        assert san.stats.violations == 0
        assert "order overflow   1 edges dropped" in san.format_summary()

    def test_capped_graph_still_checks_existing_nodes(self):
        san = Sanitizer(max_order_nodes=2)
        san.on_latch_acquire([1])
        san.on_latch_acquire([2])             # 1 -> 2 recorded
        san.on_latch_release(2)
        san.on_latch_release(1)
        san.on_latch_acquire([3])
        san.on_latch_acquire([4])             # new nodes: dropped
        san.on_latch_release(4)
        san.on_latch_release(3)
        assert san.order_overflows == 1
        san.on_latch_acquire([2])
        with pytest.raises(LatchCycleViolation):
            san.on_latch_acquire([1])         # inversion on capped nodes

    def test_reset_run_clears_graph_but_keeps_verdict(self):
        san = Sanitizer(mode="collect", max_order_nodes=2)
        frame = ExtentFrame(head_pid=8, npages=1, page_size=PAGE, san=san)
        frame.write_at(0, b"x")               # one collected violation
        san.on_latch_acquire([1])
        san.on_latch_acquire([2])
        san.on_latch_acquire([3])             # 1->3 and 2->3 both dropped
        assert san.order_overflows == 2

        san.reset_run()
        assert san.order_overflows == 0
        # The pre-reset 1 -> 2 order is gone: the inverted acquisition
        # below is a fresh graph, not a cycle.
        san.on_latch_acquire([2])
        san.on_latch_acquire([1])
        # Collected violations and stats survive as the run's verdict.
        assert len(san.violations) == 1
        assert san.stats.violations == 1


class TestCollectUnderEventLoop:
    """Satellite: collect-mode violations from distinct coroutines each
    carry the virtual-ns timestamp of the event that caused them."""

    def test_two_coroutines_report_owning_event_times(self):
        loop = EventLoop()
        san = Sanitizer(mode="collect")
        san.now_fn = lambda: loop.now_ns

        def unlatched_write(delay_ns: int, pid: int):
            yield Delay(delay_ns)
            frame = ExtentFrame(head_pid=pid, npages=1,
                                page_size=PAGE, san=san)
            frame.write_at(0, b"x")           # no pin, no prevent_evict

        loop.spawn(unlatched_write(10, 8))
        loop.spawn(unlatched_write(30, 9))
        loop.run()
        assert [(kind, at_ns) for kind, _, at_ns in san.violations] == [
            ("LatchViolation", 10),
            ("LatchViolation", 30),
        ]
        summary = san.format_summary()
        assert "[at 10 ns]" in summary
        assert "[at 30 ns]" in summary

    def test_no_clock_bound_reports_none(self):
        san = Sanitizer(mode="collect")
        frame = ExtentFrame(head_pid=8, npages=1, page_size=PAGE, san=san)
        frame.write_at(0, b"x")
        assert san.violations[0][2] is None
        assert "[at" not in san.format_summary()


class TestEngineIntegration:
    @pytest.mark.parametrize("system", ["our", "our.physlog"])
    def test_ycsb_run_is_violation_free(self, system):
        from repro.bench.adapters import make_store
        from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

        store = make_store(system, capacity_bytes=1 << 30,
                           buffer_bytes=64 << 20)
        san = attach_sanitizer(store.model)   # raise mode: first hit fails
        workload = YcsbWorkload(YcsbConfig(
            n_records=8, payload=32 * 1024, read_ratio=0.5, seed=3))
        for key, data in workload.load_phase():
            store.put(key, data)
        for op, key, data in workload.operations(80):
            if op == "read":
                store.get(key)
            else:
                store.replace(key, data)
        store.db.checkpoint()
        assert san.stats.violations == 0
        assert san.stats.frame_writes > 0
        assert san.stats.latch_acquires > 0
        assert san.stats.writebacks_checked > 0

    def test_grow_path_is_latch_clean(self):
        from repro.db import BlobDB

        db = BlobDB()
        san = attach_sanitizer(db.model)
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x01" * 100_000)
        with db.transaction() as txn:
            db.append_blob(txn, "t", b"k", b"\x02" * 50_000)
        assert db.read_blob("t", b"k")[:1] == b"\x01"
        assert san.stats.violations == 0

    def test_abort_path_is_latch_clean(self):
        from repro.db import BlobDB

        db = BlobDB()
        san = attach_sanitizer(db.model)
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x05" * 40_000)
        txn = db.begin()
        db.update_blob_range(txn, "t", b"k", 10, b"\xff" * 64,
                             scheme="delta")
        db.abort(txn)
        assert db.read_blob("t", b"k")[10:12] == b"\x05\x05"
        assert san.stats.violations == 0


class TestCli:
    def test_sanitize_command_passes(self, capsys):
        from repro.__main__ import main

        assert main(["sanitize", "ycsb", "--ops", "40",
                     "--checkpoint"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer OK" in out
        assert "violations       0" in out

    def test_lint_command_on_repo_passes(self, capsys, tmp_path):
        import json
        import os

        from repro.__main__ import main

        src = os.path.join(os.path.dirname(__file__), os.pardir,
                           "src", "repro")
        report = tmp_path / "lint.json"
        assert main(["lint", src, "--json", str(report)]) == 0
        assert "lint OK" in capsys.readouterr().out
        doc = json.loads(report.read_text())
        assert doc["findings"] == []
        assert doc["files_scanned"] > 50

    def test_lint_command_flags_bad_file(self, capsys, tmp_path):
        from repro.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
