"""Heterogeneous storage: capability typing, PMem tier, striping.

Covers the capability-negotiation edge cases (byte appends on block
devices, WAL placement fallbacks), the PMem byte-accounting rules
(appends are never rounded up to pages), the K=1 striping identity,
stripe fragment/makespan behaviour, and fault quarantine confined to a
single stripe member.
"""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.io import IoScheduler
from repro.sim.cost import CostModel
from repro.storage import (
    CapabilityError,
    DeviceStats,
    IoRequest,
    SimulatedNVMe,
    SimulatedPMem,
    StorageSet,
    StripedDevice,
    build_storage,
    capabilities_of,
    make_device,
)
from repro.storage.faults import FaultPlan, FaultPlanFactory, FaultSpec, FaultyNVMe


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def pmem_config(**overrides):
    # min_pmem_pages = 1 + 2*128 + 512 = 769 for this geometry.
    return small_config(pmem_pages=1024, **overrides)


class TestCapabilityNegotiation:
    def test_nvme_is_block_only(self):
        dev = SimulatedNVMe(CostModel(), capacity_pages=16)
        caps = capabilities_of(dev)
        assert caps.kind == "nvme"
        assert not caps.byte_addressable
        with pytest.raises(CapabilityError):
            dev.write_bytes(0, b"log record")
        with pytest.raises(CapabilityError):
            dev.read_bytes(0, 10)

    def test_striped_is_block_only(self):
        dev = StripedDevice(CostModel(), capacity_pages=64, n_devices=2,
                            stripe_pages=8)
        assert capabilities_of(dev).kind == "striped"
        assert capabilities_of(dev).stripe_width == 2
        with pytest.raises(CapabilityError):
            dev.write_bytes(0, b"log record")

    def test_pmem_is_byte_addressable(self):
        model = CostModel()
        dev = SimulatedPMem(model, capacity_pages=16)
        caps = capabilities_of(dev)
        assert caps.kind == "pmem"
        assert caps.byte_addressable
        dev.write_bytes(100, b"log record")
        assert dev.read_bytes(100, 10) == b"log record"
        assert model.pmem_time_ns > 0.0

    def test_fault_wrapper_passes_capabilities_through(self):
        model = CostModel()
        wrapped = FaultyNVMe(SimulatedPMem(model, capacity_pages=16),
                             FaultPlan(seed=1))
        assert capabilities_of(wrapped).byte_addressable

    def test_wal_placement_pmem_requires_tier(self):
        with pytest.raises(CapabilityError):
            small_config(wal_placement="pmem")

    def test_wal_placement_auto_falls_back_to_nvme(self):
        config = small_config(wal_placement="auto")
        storage = build_storage(config, CostModel())
        assert not storage.heterogeneous
        assert storage.wal is storage.data
        db = BlobDB(config)
        assert not db.wal._byte_log

    def test_wal_placement_auto_prefers_pmem(self):
        config = pmem_config()
        assert config.wal_on_pmem
        storage = build_storage(config, CostModel())
        assert storage.heterogeneous
        assert capabilities_of(storage.wal).kind == "pmem"
        assert storage.wal is storage.meta
        assert capabilities_of(storage.data).kind == "nvme"

    def test_wal_placement_nvme_forces_block_device(self):
        config = pmem_config(wal_placement="nvme")
        assert not config.wal_on_pmem
        assert config.wal_region_pid == 0  # ring leads the data device
        assert config.data_start_pid == config.wal_pages
        storage = build_storage(config, CostModel())
        assert capabilities_of(storage.meta).kind == "pmem"
        assert storage.wal is storage.data
        db = BlobDB(config)
        assert not db.wal._byte_log

    def test_undersized_pmem_tier_rejected(self):
        with pytest.raises(ValueError):
            small_config(pmem_pages=100)

    def test_make_device_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            make_device(CostModel(), capacity_pages=16, kind="tape")


class TestByteAccounting:
    def test_byte_appends_never_round_up_to_pages(self):
        dev = SimulatedPMem(CostModel(), capacity_pages=16)
        dev.write_bytes(0, b"x" * 100)
        dev.write_bytes(100, b"y" * 37)
        assert dev.stats.bytes_written_by_category["wal"] == 137
        assert dev.stats.byte_append_requests == 2
        assert dev.stats.write_requests == 2
        assert dev.stats.write_amplification(137) == pytest.approx(1.0)

    def test_write_amplification_zero_denominator_guard(self):
        stats = DeviceStats()
        with pytest.raises(ValueError):
            stats.write_amplification(0)
        with pytest.raises(ValueError):
            stats.write_amplification(-10)

    def test_delta_since_tracks_byte_appends(self):
        dev = SimulatedPMem(CostModel(), capacity_pages=16)
        dev.write_bytes(0, b"a" * 50)
        before = dev.stats.snapshot()
        dev.write_bytes(50, b"b" * 20)
        delta = dev.stats.delta_since(before)
        assert delta.byte_append_requests == 1
        assert delta.bytes_written_by_category["wal"] == 20
        # The snapshot is an independent copy, not a live view.
        assert before.byte_append_requests == 1

    def test_merge_unions_custom_categories(self):
        a = DeviceStats()
        a.bytes_written_by_category["exotic"] = 5
        a.byte_append_requests = 2
        b = DeviceStats()
        b.bytes_written_by_category["exotic"] = 7
        total = DeviceStats.merge([a, b])
        assert total.bytes_written_by_category["exotic"] == 12
        assert total.byte_append_requests == 2
        # Default categories survive the merge (seeded by the cls()).
        assert "wal" in total.bytes_written_by_category


class TestWalOnPMem:
    def test_engine_end_to_end_with_crash_recovery(self):
        config = pmem_config()
        db = BlobDB(config)
        assert db.storage.heterogeneous
        assert db.wal._byte_log
        db.create_table("t")
        with db.transaction() as txn:
            db.put(txn, "t", b"k1", b"hello pmem")
        db.drain_commit_window()
        db.wal.sync_flush()
        assert db.wal_device.stats.byte_append_requests > 0
        storage = db.crash()
        assert isinstance(storage, StorageSet)
        db2 = BlobDB.recover(storage, config, db.model)
        assert db2.get("t", b"k1") == b"hello pmem"

    def test_meta_only_pmem_end_to_end(self):
        config = pmem_config(wal_placement="nvme")
        db = BlobDB(config)
        db.create_table("t")
        with db.transaction() as txn:
            db.put(txn, "t", b"k1", b"block wal")
        db.drain_commit_window()
        db.wal.sync_flush()
        assert db.wal_device.stats.byte_append_requests == 0
        storage = db.crash()
        db2 = BlobDB.recover(storage, config, db.model)
        assert db2.get("t", b"k1") == b"block wal"

    def test_durable_ack_cheaper_on_pmem(self):
        def durable_commit_ns(on_pmem):
            config = pmem_config() if on_pmem else small_config()
            db = BlobDB(config)
            db.create_table("t")
            db.drain_commit_window()
            db.wal.sync_flush()
            start = db.model.clock.now_ns
            for i in range(4):
                with db.transaction() as txn:
                    db.put(txn, "t", b"k%d" % i, b"v" * 256)
                db.drain_commit_window()
                db.wal.sync_flush()
            return db.model.clock.now_ns - start

        assert durable_commit_ns(True) < durable_commit_ns(False)


class TestFaultedByteAppends:
    def test_torn_append_detected_not_silent(self):
        model = CostModel()
        pmem = SimulatedPMem(model, capacity_pages=16)
        dev = FaultyNVMe(pmem, FaultPlan(seed=5, torn_write=1.0))
        dev.write_bytes(0, b"\xab" * 200)
        assert dev.plan.stats.torn_writes == 1
        # The torn suffix reverted to the pre-image without a CRC
        # refresh, so the damage is detectable — never silent.
        assert pmem.verify_range(0, 1) == [0]

    def test_block_inner_raises_before_consuming_draws(self):
        plan = FaultPlan(seed=5, torn_write=1.0, bit_flip=1.0)
        dev = FaultyNVMe(SimulatedNVMe(CostModel(), capacity_pages=16), plan)
        with pytest.raises(CapabilityError):
            dev.write_bytes(0, b"log record")
        assert plan.stats.total == 0


class TestStriping:
    def test_k1_is_byte_identical_to_bare_nvme(self):
        def run(dev, model):
            ps = dev.page_size
            dev.write(0, b"\x01" * (4 * ps), category="data")
            dev.write(16, b"\x02" * (2 * ps), category="wal",
                      background=True)
            out = dev.read(0, 4)
            batch = dev.submit([IoRequest(pid=0, npages=2),
                                IoRequest(pid=8, npages=4,
                                          data=b"\x03" * (4 * ps))])
            return out, batch[0], model.clock.now_ns

        m_bare, m_stripe = CostModel(), CostModel()
        bare = SimulatedNVMe(m_bare, capacity_pages=256)
        striped = StripedDevice(m_stripe, capacity_pages=256, n_devices=1,
                                stripe_pages=8)
        out_b, batch_b, ns_b = run(bare, m_bare)
        out_s, batch_s, ns_s = run(striped, m_stripe)
        assert out_b == out_s
        assert batch_b == batch_s
        assert ns_b == ns_s  # same virtual time, not merely close
        assert bare.stats == striped.stats

    def test_fragments_round_trip_across_members(self):
        model = CostModel()
        dev = StripedDevice(model, capacity_pages=240, n_devices=3,
                            stripe_pages=4)
        ps = dev.page_size
        pattern = bytes(range(256)) * (10 * ps // 256)
        dev.write(5, pattern)  # crosses three chunk boundaries
        assert dev.read(5, 10) == pattern
        assert all(m.resident_pages() > 0 for m in dev.members)

    def test_makespan_speedup_over_widths(self):
        def elapsed(n_devices):
            model = CostModel()
            dev = StripedDevice(model, capacity_pages=1024,
                                n_devices=n_devices, stripe_pages=8)
            ps = dev.page_size
            for i in range(16):
                dev.write(i * 8, b"\x07" * (8 * ps), background=True)
            start = model.clock.now_ns
            dev.submit([IoRequest(pid=i * 8, npages=8) for i in range(16)])
            return model.clock.now_ns - start

        one, four = elapsed(1), elapsed(4)
        # A lone device already overlaps its own queue, so 16 extents
        # don't quite halve; the >=2x gate lives in the bench sweep.
        assert four < 0.7 * one  # parallel queues, makespan pricing

    def test_scheduler_keeps_coalesced_runs_inside_one_stripe(self):
        model = CostModel()
        dev = StripedDevice(model, capacity_pages=64, n_devices=2,
                            stripe_pages=4)
        ps = dev.page_size
        dev.write(0, b"\x05" * (8 * ps), background=True)
        sched = IoScheduler(dev, model, queue_depth=8, max_merge_pages=64)
        for pid in range(8):
            sched.submit_read(pid, 1)
        sched.drain()
        # pids 0..3 and 4..7 live on different members: one coalesced
        # run each, never a single 8-page run spanning the boundary.
        assert sched.stats.requests_in == 8
        assert sched.stats.requests_out == 2

    def test_fault_factory_gives_each_member_its_own_plan(self):
        factory = FaultPlanFactory(FaultSpec(seed=9, bit_flip=0.5))
        dev = StripedDevice(CostModel(), capacity_pages=64, n_devices=4,
                            stripe_pages=4, fault_factory=factory)
        assert sorted(factory.plans) == [
            "stripe0", "stripe1", "stripe2", "stripe3"]
        seeds = {plan.spec.seed for plan in factory.plans.values()}
        assert len(seeds) == 4  # independent schedules per member
        assert all(isinstance(m, FaultyNVMe) for m in dev.members)

    def test_single_member_fault_quarantine(self):
        class OneBadMember:
            """stripe1 flips a bit on every write; the rest are clean."""

            def plan_for(self, target):
                rate = 1.0 if target == "stripe1" else 0.0
                return FaultPlan(FaultSpec(seed=11, bit_flip=rate))

        model = CostModel()
        dev = StripedDevice(model, capacity_pages=256, n_devices=4,
                            stripe_pages=8, fault_factory=OneBadMember())
        ps = dev.page_size
        for i in range(32):
            dev.write(i * 8, bytes([i]) * (8 * ps), background=True)
        bad = dev.verify_range(0, 256)
        assert bad, "the flipping member must damage at least one page"
        # Every damaged logical pid maps back to member 1's chunks —
        # the quarantine never spreads to the healthy members.
        assert all((pid // 8) % 4 == 1 for pid in bad)
        assert dev.fault_stats.bit_flips == len(
            {pid // 8 for pid in bad}) or dev.fault_stats.bit_flips > 0

    def test_striped_engine_end_to_end(self):
        config = small_config(stripe_devices=4, stripe_chunk_pages=16)
        db = BlobDB(config)
        assert capabilities_of(db.device).stripe_width == 4
        db.create_table("t")
        payload = bytes(range(256)) * 64
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"big", payload)
        db.drain_commit_window()
        assert db.read_blob("t", b"big") == payload
        storage = db.crash()
        db2 = BlobDB.recover(storage, config, db.model)
        assert db2.read_blob("t", b"big") == payload
