"""Tests for the byte-budgeted prefix-compressed B-Tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.btree import BTree
from repro.sim.cost import CostModel


def key(i: int) -> bytes:
    return f"key-{i:08d}".encode()


class TestBasicOperations:
    def test_empty_lookup(self):
        assert BTree().lookup(b"missing") is None

    def test_insert_lookup_roundtrip(self):
        tree = BTree()
        tree.insert(b"alpha", 1)
        tree.insert(b"beta", 2)
        assert tree.lookup(b"alpha") == 1
        assert tree.lookup(b"beta") == 2
        assert tree.lookup(b"gamma") is None

    def test_insert_replaces_existing(self):
        tree = BTree()
        tree.insert(b"k", "old")
        tree.insert(b"k", "new")
        assert tree.lookup(b"k") == "new"
        assert len(tree) == 1

    def test_contains(self):
        tree = BTree()
        tree.insert(b"x", 0)
        assert b"x" in tree
        assert b"y" not in tree

    def test_len_tracks_unique_keys(self):
        tree = BTree()
        for i in range(100):
            tree.insert(key(i), i)
        assert len(tree) == 100

    def test_many_inserts_split_and_stay_searchable(self):
        tree = BTree(node_bytes=256)
        n = 2000
        order = list(range(n))
        random.Random(7).shuffle(order)
        for i in order:
            tree.insert(key(i), i * 10)
        for i in range(n):
            assert tree.lookup(key(i)) == i * 10
        assert tree.stats().height > 1

    def test_first(self):
        tree = BTree()
        assert tree.first() is None
        for i in (5, 3, 9):
            tree.insert(key(i), i)
        assert tree.first() == (key(3), 3)


class TestDelete:
    def test_delete_present(self):
        tree = BTree()
        tree.insert(b"k", 1)
        assert tree.delete(b"k") is True
        assert tree.lookup(b"k") is None
        assert len(tree) == 0

    def test_delete_absent(self):
        tree = BTree()
        tree.insert(b"k", 1)
        assert tree.delete(b"zzz") is False
        assert len(tree) == 1

    def test_delete_all_from_deep_tree(self):
        tree = BTree(node_bytes=128)
        n = 500
        for i in range(n):
            tree.insert(key(i), i)
        order = list(range(n))
        random.Random(3).shuffle(order)
        for i in order:
            assert tree.delete(key(i)) is True
        assert len(tree) == 0
        for i in range(n):
            assert tree.lookup(key(i)) is None

    def test_interleaved_insert_delete(self):
        tree = BTree(node_bytes=256)
        shadow = {}
        rng = random.Random(11)
        for _ in range(3000):
            i = rng.randrange(200)
            if rng.random() < 0.6:
                tree.insert(key(i), i)
                shadow[key(i)] = i
            else:
                assert tree.delete(key(i)) == (key(i) in shadow)
                shadow.pop(key(i), None)
        assert len(tree) == len(shadow)
        for k, v in shadow.items():
            assert tree.lookup(k) == v


class TestScan:
    def test_full_scan_is_sorted(self):
        tree = BTree(node_bytes=256)
        items = {key(i): i for i in range(300)}
        for k, v in sorted(items.items(), reverse=True):
            tree.insert(k, v)
        scanned = list(tree.scan())
        assert scanned == sorted(items.items())

    def test_range_scan_half_open(self):
        tree = BTree(node_bytes=256)
        for i in range(100):
            tree.insert(key(i), i)
        got = [v for _, v in tree.scan(start=key(10), end=key(20))]
        assert got == list(range(10, 20))

    def test_scan_from_start_key_missing(self):
        tree = BTree()
        for i in (0, 2, 4, 6):
            tree.insert(key(i), i)
        got = [v for _, v in tree.scan(start=key(1), end=key(5))]
        assert got == [2, 4]

    def test_scan_empty_tree(self):
        assert list(BTree().scan()) == []


class TestCustomComparator:
    def test_reverse_order_comparator(self):
        tree = BTree(cmp=lambda a, b: (a < b) - (a > b),
                     key_size=lambda k: 8)
        for i in range(50):
            tree.insert(i, i)
        keys = [k for k, _ in tree.scan()]
        assert keys == list(range(49, -1, -1))

    def test_object_keys_with_size_function(self):
        tree = BTree(cmp=lambda a, b: (a > b) - (a < b),
                     key_size=lambda k: 100, node_bytes=512)
        for i in range(100):
            tree.insert(i, str(i))
        assert tree.lookup(42) == "42"
        assert tree.stats().leaf_count > 1


class TestStatsAndCompression:
    def test_stats_counts(self):
        tree = BTree(node_bytes=256)
        for i in range(500):
            tree.insert(key(i), i)
        stats = tree.stats()
        assert stats.entry_count == 500
        assert stats.leaf_count > 1
        assert stats.inner_count >= 1
        assert stats.height >= 2
        assert stats.size_bytes > 0

    def test_prefix_compression_shrinks_shared_prefix_keys(self):
        """Keys sharing a long prefix should use far fewer leaf bytes."""
        shared = BTree(node_bytes=4096)
        distinct = BTree(node_bytes=4096)
        prefix = b"p" * 64
        for i in range(200):
            shared.insert(prefix + key(i), i)
            distinct.insert(random.Random(i).randbytes(64) + key(i), i)
        assert shared.stats().leaf_key_bytes < distinct.stats().leaf_key_bytes * 0.6

    def test_byte_budget_drives_leaf_count(self):
        """Bigger keys -> more leaves for the same entry count."""
        small = BTree(node_bytes=4096)
        big = BTree(node_bytes=4096)
        for i in range(300):
            small.insert(key(i), None)
            big.insert(key(i) + bytes(1000 + (i % 7)), None)
        assert big.stats().leaf_count > small.stats().leaf_count * 5

    def test_cost_model_charged_per_node_visit(self):
        model = CostModel()
        tree = BTree(node_bytes=256, model=model)
        for i in range(200):
            tree.insert(key(i), i)
        before = model.clock.now_ns
        tree.lookup(key(100))
        visits = (model.clock.now_ns - before) / model.params.btree_node_ns
        assert visits == pytest.approx(tree.stats().height, abs=1)

    def test_rejects_tiny_node_bytes(self):
        with pytest.raises(ValueError):
            BTree(node_bytes=16)


class TestPropertyBased:
    @given(st.dictionaries(st.binary(min_size=1, max_size=24),
                           st.integers(), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_semantics(self, items):
        tree = BTree(node_bytes=256)
        for k, v in items.items():
            tree.insert(k, v)
        assert len(tree) == len(items)
        for k, v in items.items():
            assert tree.lookup(k) == v
        assert [k for k, _ in tree.scan()] == sorted(items)

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                    max_size=120, unique=True),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_delete_subset_preserves_rest(self, keys, data):
        tree = BTree(node_bytes=256)
        for k in keys:
            tree.insert(k, k)
        to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True))
        for k in to_delete:
            assert tree.delete(k)
        remaining = set(keys) - set(to_delete)
        assert len(tree) == len(remaining)
        for k in remaining:
            assert tree.lookup(k) == k
        for k in to_delete:
            assert tree.lookup(k) is None
