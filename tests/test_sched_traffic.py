"""Tests for the traffic simulator: knee, tails, parity, WorkerSim."""

import random

import pytest

from repro.db import BlobDB, EngineConfig
from repro.sched import (
    AdmissionController,
    TrafficConfig,
    TrafficSim,
    generate_jobs,
    op_for,
)
from repro.sim.workers import WorkerSim

CFG = dict(n_workers=1, n_shards=1, n_keys=32, payload_bytes=2048,
           read_ratio=0.5, seed=5)


def fresh_sim(admission=None, **overrides):
    merged = {**CFG, **overrides}
    return TrafficSim(TrafficConfig(**merged), admission=admission)


def capacity_ops_s(n_ops=80):
    return fresh_sim().run_closed(n_ops).throughput_ops_s


class TestClosedLoop:
    def test_deterministic(self):
        a = fresh_sim().run_closed(60).as_dict()
        b = fresh_sim().run_closed(60).as_dict()
        assert a == b

    def test_all_ops_complete(self):
        res = fresh_sim().run_closed(60)
        assert res.completed == res.offered == 60
        assert res.shed == 0
        assert res.throughput_ops_s > 0

    def test_agrees_with_workersim_at_one_worker(self):
        """The cross-check the analytic model must pass: one worker,
        no contention — the event loop replays the same demands
        serially, so throughput must match ``WorkerSim(1)`` closely.

        The comparison engine is built *on the WorkerSim's own model*
        inside the ``setup`` hook: a post-hoc model swap (the fig10
        read-only idiom) misses the WAL writer's model reference and
        silently drops every commit-path charge from the clock.
        """
        n_ops = 60
        cfg = TrafficConfig(**CFG)
        des = fresh_sim().run_closed(n_ops)

        ops = [op_for(0, i, seed=cfg.seed, n_keys=cfg.n_keys,
                      payload_bytes=cfg.payload_bytes,
                      read_ratio=cfg.read_ratio) for i in range(n_ops)]
        page = 4096
        capacity_pages = cfg.device_bytes // page
        config = EngineConfig(
            device_pages=capacity_pages,
            buffer_pool_pages=cfg.buffer_bytes // page,
            wal_pages=min(capacity_pages // 8, 65536),
            catalog_pages=min(capacity_pages // 16, 8192),
            pool="vmcache",
            log_policy="async-blob",
        )
        state = {}

        def setup(model):
            # Same preload as TrafficSim.preload (untimed: WorkerSim
            # snapshots the clock after setup returns).
            db = BlobDB(config, model=model)
            db.create_table("blobs")
            for idx in range(cfg.n_keys):
                key = b"t%02d-key%08d" % (0, idx)
                data = random.Random(
                    cfg.seed * 31 + idx).randbytes(cfg.payload_bytes)
                with db.transaction() as txn:
                    db.put_blob(txn, "blobs", key, data)
            state["db"] = db

        def op(model, i):
            db = state["db"]
            kind, key, payload = ops[i]
            if kind == "read":
                assert db.read_blob("blobs", key)
            else:
                with db.transaction() as txn:
                    db.delete_blob(txn, "blobs", key)
                    db.put_blob(txn, "blobs", key, payload)

        analytic = WorkerSim(1).run(op, n_ops, setup=setup)
        assert des.throughput_ops_s == pytest.approx(
            analytic.throughput_ops_s, rel=0.05)

    def test_documents_where_workersim_lies(self):
        """``WorkerSim``'s per-op time is load-independent; the event
        loop shows queueing: near saturation, latency >> service."""
        cap = capacity_ops_s()
        jobs = generate_jobs(tenants=1, per_tenant=150,
                             rate_ops_s=cap * 0.9, seed=5, n_keys=32,
                             payload_bytes=2048, read_ratio=0.5)
        res = fresh_sim().run(jobs)
        # Queueing waits exist (a stretch factor cannot express them)...
        assert res.wait["mean"] > 0
        # ...and the latency distribution has a real tail: p999 is
        # strictly beyond p50, while the analytic model emits one
        # constant per-op time for every op.
        assert res.latency["p999"] > res.latency["p50"]
        assert res.latency["mean"] > res.service["mean"]


class TestOpenLoopKnee:
    def test_throughput_saturates_and_tail_explodes(self):
        cap = capacity_ops_s()
        points = {}
        for mult in (0.25, 2.0, 4.0):
            jobs = generate_jobs(tenants=1, per_tenant=120,
                                 rate_ops_s=cap * mult, seed=7,
                                 n_keys=32, payload_bytes=2048,
                                 read_ratio=0.5)
            points[mult] = fresh_sim().run(jobs)
        tp = {m: r.throughput_ops_s for m, r in points.items()}
        # Below the knee, completed throughput tracks offered load.
        assert tp[0.25] == pytest.approx(cap * 0.25, rel=0.25)
        # Past the knee it saturates: quadrupling offered load from 2x
        # to 4x buys almost nothing.
        assert tp[4.0] < 1.15 * tp[2.0]
        # The tail pays for the fiction: p999 grows by an order of
        # magnitude across the knee.
        assert points[4.0].latency["p999"] > \
            10 * points[0.25].latency["p999"]
        # Open loop without admission never sheds — the queue just grows.
        assert all(r.shed == 0 for r in points.values())
        assert points[4.0].max_dispatch_depth > \
            5 * points[0.25].max_dispatch_depth

    def test_deterministic_across_runs(self):
        cap = capacity_ops_s()
        jobs = generate_jobs(tenants=2, per_tenant=60,
                             rate_ops_s=cap, seed=9, n_keys=32,
                             payload_bytes=2048, read_ratio=0.5)
        a = fresh_sim().run(jobs).as_dict()
        b = fresh_sim().run(jobs).as_dict()
        assert a == b


class TestAdmissionUnderOverload:
    def overload_jobs(self, cap, seed=11):
        return generate_jobs(tenants=2, per_tenant=80,
                             rate_ops_s=cap * 2.0, seed=seed,
                             n_keys=32, payload_bytes=2048,
                             read_ratio=0.0)

    def test_shedding_bounds_the_tail(self):
        cap = capacity_ops_s()
        jobs = self.overload_jobs(cap)
        unprotected = fresh_sim().run(jobs)
        protected = fresh_sim(admission=AdmissionController(
            policy="shed", rate_tokens_s=cap * 0.3, burst=4.0)).run(jobs)
        assert protected.shed > 0
        assert protected.latency["p999"] < unprotected.latency["p999"] / 2
        # Shed accounting is exact, not sampled.
        assert protected.offered == protected.admitted + protected.shed
        assert protected.completed == protected.admitted
        assert sum(protected.shed_by_tenant.values()) == protected.shed

    def test_shed_vs_queue_policy_parity(self):
        """Same seed, same schedule: the queue policy completes every
        op late, the shed policy drops some — but every op they both
        execute produces byte-identical outcomes, and every key no shed
        op touched converges to byte-identical stored state."""
        cap = capacity_ops_s()
        jobs = self.overload_jobs(cap)
        sims = {}
        results = {}
        for policy in ("shed", "queue"):
            sim = fresh_sim(admission=AdmissionController(
                policy=policy, rate_tokens_s=cap * 0.5, burst=4.0))
            sims[policy] = sim
            results[policy] = sim.run(jobs)
        shed_res, queue_res = results["shed"], results["queue"]
        # Queue loses nothing; shed loses exactly its shed count.
        assert queue_res.completed == queue_res.offered
        assert queue_res.shed == 0
        assert queue_res.queued_ops > 0
        assert shed_res.shed > 0
        assert shed_res.completed == shed_res.offered - shed_res.shed
        # Different latency: the queue policy pays admission wait.
        assert queue_res.wait["max"] > shed_res.wait["max"]
        assert queue_res.latency["mean"] > shed_res.latency["mean"]
        # Byte-identical op outcomes: write payloads are pure functions
        # of (tenant, index), so keys untouched by any shed op must hold
        # identical bytes in both engines.
        done_shed = {(j.tenant, j.index)
                     for j, *_ in sims["shed"]._completed}
        shed_keys = {j.key for j in jobs
                     if (j.tenant, j.index) not in done_shed}
        compared = 0
        for job in jobs:
            if job.key in shed_keys:
                continue
            a = sims["shed"]._stores[
                sims["shed"].shard_of(job.key)].get(job.key)
            b = sims["queue"]._stores[
                sims["queue"].shard_of(job.key)].get(job.key)
            assert a == b, job.key
            compared += 1
        assert compared > 0

    def test_zero_quota_tenant_is_fully_shed_but_isolated(self):
        """A zero-quota tenant storms; the paying tenant is untouched."""
        from repro.sched.admission import TokenBucket

        cap = capacity_ops_s()
        jobs = generate_jobs(tenants=2, per_tenant=60,
                             rate_ops_s=cap * 0.4, seed=13, n_keys=32,
                             payload_bytes=2048, read_ratio=0.5)
        ctl = AdmissionController(policy="shed", rate_tokens_s=cap,
                                  burst=8.0,
                                  quotas={1: TokenBucket(0.0, 0.0)})
        res = fresh_sim(admission=ctl).run(jobs)
        assert res.shed_by_tenant.get(1) == 60
        assert res.shed_by_tenant.get(0, 0) == 0
        assert res.completed == 60


class TestShardsAndWorkers:
    def test_more_workers_and_shards_raise_capacity(self):
        slim = fresh_sim().run_closed(60).throughput_ops_s
        wide = fresh_sim(n_workers=4, n_shards=2).run_closed(60) \
            .throughput_ops_s
        assert wide > 1.5 * slim

    def test_write_amplification_accounted(self):
        res = fresh_sim(read_ratio=0.0).run_closed(40)
        assert res.payload_bytes == 40 * CFG["payload_bytes"]
        assert res.write_amplification > 0
