"""Tests for lazy begin records and the cross-worker group-commit
window: read-only transactions never touch the WAL, commits inside a
window defer their flushes, and the drain preserves WAL-before-data
ordering plus recovery correctness."""

import pytest

from repro import obs
from repro.db import BlobDB, EngineConfig
from repro.wal.records import InsertRecord, TxnBeginRecord


def small_config(**overrides):
    defaults = dict(device_pages=2048, wal_pages=128, catalog_pages=64,
                    buffer_pool_pages=512)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def make_db(**overrides):
    db = BlobDB(small_config(**overrides))
    db.create_table("t")
    return db


class TestLazyBegin:
    def test_begin_alone_appends_nothing(self):
        db = make_db()
        before = db.wal.stats.records
        txn = db.begin()
        assert db.wal.stats.records == before
        db.abort(txn)

    def test_read_only_commit_appends_no_records_and_no_flush(self):
        db = make_db()
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x01" * 5000)
        records = db.wal.stats.records
        flushes = db.wal.stats.flushes
        with db.transaction() as txn:
            assert db.exists("t", b"k")
        assert db.wal.stats.records == records
        assert db.wal.stats.flushes == flushes

    def test_read_only_abort_appends_no_records(self):
        db = make_db()
        records = db.wal.stats.records
        txn = db.begin()
        db.abort(txn)
        assert db.wal.stats.records == records

    def test_begin_record_immediately_precedes_first_mutation(self):
        db = make_db()
        txn = db.begin()
        # Still nothing: begin is logged lazily.
        marker = db.wal.stats.records
        db.put_blob(txn, "t", b"k", b"\x02" * 5000)
        db.commit(txn)
        db.wal.sync_flush()
        mine = [r for r in db.wal.durable_records()
                if getattr(r, "txn_id", None) == txn.txn_id]
        assert isinstance(mine[0], TxnBeginRecord)
        assert any(isinstance(r, InsertRecord) for r in mine[1:])
        # The begin record was the very next append after the marker.
        assert db.wal.stats.records > marker


class TestCommitWindow:
    def test_commits_inside_window_defer_the_flush(self):
        db = make_db(group_commit_window_ns=1e15)
        flushes = db.wal.stats.flushes
        data_before = db.device.stats.bytes_written_by_category.get(
            "data", 0)
        for i in range(5):
            with db.transaction() as txn:
                db.put_blob(txn, "t", bytes([i]), b"\x03" * 3000)
        # Every commit rode the (never-expiring) window: no WAL flush,
        # no extent write-back yet.
        assert db.wal.stats.flushes == flushes
        assert db.device.stats.bytes_written_by_category.get(
            "data", 0) == data_before
        db.drain_commit_window()
        assert db.wal.stats.flushes == flushes + 1
        assert db.device.stats.bytes_written_by_category["data"] \
            > data_before
        for i in range(5):
            assert db.read_blob("t", bytes([i])) == b"\x03" * 3000

    def test_commit_past_deadline_drains_for_the_group(self):
        db = make_db(group_commit_window_ns=100.0)
        db.drain_commit_window()  # settle create_table's commit
        tracer = obs.attach(db.model)
        for i in range(2):
            # Each put costs far more than 100 ns of virtual time, so
            # the second commit lands past the deadline, draining both.
            with db.transaction() as txn:
                db.put_blob(txn, "t", bytes([i]), b"\x04" * 3000)
        db.model.obs = None
        assert tracer.metrics.counter("wal.window_drains").total() == 1
        assert tracer.metrics.counter("wal.window_commits").total() == 2

    def test_checkpoint_drains_the_window_first(self):
        db = make_db(group_commit_window_ns=1e15)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x05" * 3000)
        assert db.policy._window_deadline is not None
        db.checkpoint()
        assert db.policy._window_deadline is None
        assert not db.policy._window_frames

    def test_window_reduces_wal_write_amplification(self):
        def wal_bytes(window_ns):
            db = make_db(group_commit_window_ns=window_ns)
            base = db.device.stats.bytes_written_by_category.get("wal", 0)
            for i in range(8):
                with db.transaction() as txn:
                    db.put_blob(txn, "t", bytes([i]), b"\x06" * 2000)
            db.drain_commit_window()
            return db.device.stats.bytes_written_by_category["wal"] - base

        # Per-commit flushing rewrites the WAL's partial tail page once
        # per commit; one windowed flush writes each page once.
        assert wal_bytes(1e15) < wal_bytes(0.0)

    def test_deferred_commits_survive_crash_after_drain(self):
        config = small_config(group_commit_window_ns=1e15)
        db = BlobDB(config)
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x07" * 5000)
        db.drain_commit_window()
        recovered = BlobDB.recover(db.crash(), config)
        assert recovered.read_blob("t", b"k") == b"\x07" * 5000

    def test_frame_replaced_inside_window_is_skipped_at_drain(self):
        db = make_db(group_commit_window_ns=1e15)
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"gone", b"\x08" * 3000)
        with db.transaction() as txn:
            db.delete_blob(txn, "t", b"gone")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"kept", b"\x09" * 3000)
        # The deleted blob's deferred frame no longer owns its pages;
        # the drain must skip it without clobbering the survivor.
        db.drain_commit_window()
        assert db.read_blob("t", b"kept") == b"\x09" * 3000
        assert not db.exists("t", b"gone")

    def test_window_length_is_validated(self):
        with pytest.raises(ValueError):
            EngineConfig(group_commit_window_ns=-1.0)
