"""Unit tests for the deterministic fault-injection substrate:
FaultPlan schedules, FaultyNVMe damage semantics, per-page protection
CRCs, RetryPolicy backoff, WAL scan hardening, quarantine, and scrub."""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.db.errors import (
    ChecksumMismatchError,
    DeviceIOError,
    RetriesExhaustedError,
)
from repro.sim.cost import CostModel
from repro.storage.device import IoRequest, SimulatedNVMe
from repro.storage.faults import (
    FaultPlan,
    FaultSpec,
    FaultyNVMe,
    RetryPolicy,
)
from repro.wal.records import (
    TxnBeginRecord,
    TxnCommitRecord,
    find_frame_beyond,
    scan_records,
)


def make_device(pages=256, protect=True):
    model = CostModel()
    return SimulatedNVMe(model, capacity_pages=pages, protect=protect), model


def small_config(**overrides):
    defaults = dict(device_pages=2048, wal_pages=128, catalog_pages=64,
                    buffer_pool_pages=512)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class TestProtectionInfo:
    def test_clean_write_read_roundtrip_verifies(self):
        dev, _ = make_device()
        dev.write(10, b"\xab" * 8192)
        assert dev.read(10, 2) == b"\xab" * 8192
        assert dev.integrity.pages_protected == 2
        assert dev.integrity.pages_verified == 2
        assert dev.integrity.checksum_failures == 0

    def test_poke_breaks_crc_and_read_raises(self):
        dev, _ = make_device()
        dev.write(5, b"\x01" * 4096)
        dev._poke(5, b"\x02" * 4096)
        assert not dev.check_page(5)
        with pytest.raises(ChecksumMismatchError) as exc_info:
            dev.read(5, 1)
        assert exc_info.value.pid == 5
        assert dev.integrity.checksum_failures == 1

    def test_unverified_read_returns_damaged_bytes(self):
        dev, _ = make_device()
        dev.write(5, b"\x01" * 4096)
        dev._poke(5, b"\x02" * 4096)
        assert dev.read(5, 1, verify=False) == b"\x02" * 4096

    def test_verify_range_locates_damage_without_raising(self):
        dev, _ = make_device()
        dev.write(0, b"\x07" * 4096 * 4)
        dev._poke(2, b"junk")
        assert dev.verify_range(0, 4) == [2]

    def test_never_written_pages_have_no_crc(self):
        dev, _ = make_device()
        assert dev.check_page(99)
        assert dev.read(99, 1) == b"\x00" * 4096

    def test_protect_off_skips_everything(self):
        dev, _ = make_device(protect=False)
        dev.write(1, b"\x01" * 4096)
        dev._poke(1, b"\x02" * 4096)
        assert dev.read(1, 1) == b"\x02" * 4096
        assert dev.verify_range(1, 1) == []


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        spec = FaultSpec(seed=42, torn_write=0.3, bit_flip=0.3,
                         transient_error=0.3)
        a, b = FaultPlan(spec), FaultPlan(spec)
        draws_a = [(a.draw_transient(), a.draw_torn_byte(4096),
                    a.draw_bit_flip(4, 4096)) for _ in range(50)]
        draws_b = [(b.draw_transient(), b.draw_torn_byte(4096),
                    b.draw_bit_flip(4, 4096)) for _ in range(50)]
        assert draws_a == draws_b
        assert a.stats == b.stats

    def test_transient_bursts_are_capped(self):
        plan = FaultPlan(FaultSpec(seed=1, transient_error=1.0,
                                   max_consecutive_transients=2))
        draws = [plan.draw_transient() for _ in range(9)]
        assert draws == [True, True, False] * 3
        assert plan.stats.transient_errors == 6

    def test_zero_rates_draw_nothing(self):
        plan = FaultPlan(FaultSpec(seed=3))
        assert not plan.draw_transient()
        assert plan.draw_torn_byte(4096) is None
        assert plan.draw_bit_flip(1, 4096) is None
        assert plan.draw_latency_spike_ns() == 0.0
        assert plan.stats.total == 0


class TestFaultyNVMe:
    def test_torn_write_keeps_prefix_reverts_suffix(self):
        dev, _ = make_device()
        dev.write(0, b"\xaa" * 8192)  # pre-image
        plan = FaultPlan(FaultSpec(seed=0, torn_write=1.0))
        faulty = FaultyNVMe(dev, plan)
        faulty.write(0, b"\xbb" * 8192)
        assert plan.stats.torn_writes == 1
        stored = dev.peek(0, 2)
        tear = stored.find(b"\xaa")
        assert 0 <= tear <= 8192                # some prefix landed
        assert stored[:tear] == b"\xbb" * tear  # new bytes up to the tear
        assert stored[tear:] == b"\xaa" * (8192 - tear)  # pre-image after
        # The protection CRC describes the *intended* write, so every
        # page at or past the tear fails verification.
        assert dev.verify_range(0, 2) == \
            [p for p in (0, 1) if tear < (p + 1) * 4096]

    def test_bit_flip_is_detected_by_crc(self):
        dev, _ = make_device()
        plan = FaultPlan(FaultSpec(seed=5, bit_flip=1.0))
        faulty = FaultyNVMe(dev, plan)
        faulty.write(7, b"\x00" * 4096)
        assert plan.stats.bit_flips == 1
        stored = dev.peek(7, 1)
        assert sum(bin(b).count("1") for b in stored) == 1  # exactly 1 bit
        with pytest.raises(ChecksumMismatchError):
            faulty.read(7, 1)

    def test_transient_errors_raise_then_clear(self):
        dev, _ = make_device()
        plan = FaultPlan(FaultSpec(seed=2, transient_error=1.0))
        faulty = FaultyNVMe(dev, plan)
        for _ in range(2):
            with pytest.raises(DeviceIOError):
                faulty.read(0, 1)
        faulty.read(0, 1)  # burst cap reached: the fault clears

    def test_latency_spike_advances_clock(self):
        dev, model = make_device()
        plan = FaultPlan(FaultSpec(seed=0, latency_spike=1.0,
                                   latency_spike_ns=5e6))
        faulty = FaultyNVMe(dev, plan)
        before = model.clock.now_ns
        faulty.read(0, 1)
        assert model.clock.now_ns - before >= 5e6
        assert plan.stats.latency_spikes == 1

    def test_delegates_device_interface(self):
        dev, _ = make_device()
        faulty = FaultyNVMe(dev, FaultPlan(FaultSpec(seed=0)))
        assert faulty.page_size == dev.page_size
        assert faulty.capacity_pages == dev.capacity_pages
        assert faulty.stats is dev.stats
        assert faulty.fault_stats.total == 0

    def test_clean_plan_is_transparent(self):
        dev, _ = make_device()
        faulty = FaultyNVMe(dev, FaultPlan(FaultSpec(seed=0)))
        faulty.submit([IoRequest(pid=0, npages=1, data=b"\x11" * 4096)])
        assert faulty.submit([IoRequest(pid=0, npages=1)]) == \
            [b"\x11" * 4096]

    @staticmethod
    def _fault_index_for(seed):
        """Submit an 8-write batch; return (k, applied-flags per request)."""
        dev, _ = make_device(protect=False)
        for i in range(8):
            dev.write(4 * i, b"\x00" * 4096, background=True)
        plan = FaultPlan(FaultSpec(seed=seed, transient_error=1.0,
                                   max_consecutive_transients=1))
        faulty = FaultyNVMe(dev, plan)
        batch = [IoRequest(pid=4 * i, npages=1, data=bytes([i + 1]) * 4096)
                 for i in range(8)]
        with pytest.raises(DeviceIOError) as err:
            faulty.submit(batch)
        k = int(str(err.value).rsplit(" ", 1)[-1])
        applied = tuple(dev.peek(4 * i, 1) == bytes([i + 1]) * 4096
                        for i in range(8))
        return k, applied

    def test_batch_fault_applies_exact_prefix(self):
        # A faulted batch is not atomic: requests before the drawn index
        # k land verbatim, k and everything after stay untouched.
        k, applied = self._fault_index_for(seed=9)
        assert 0 <= k < 8
        assert applied == tuple(i < k for i in range(8))

    def test_batch_fault_index_is_seed_deterministic(self):
        assert self._fault_index_for(seed=9) == self._fault_index_for(seed=9)
        # A different seed moves the tear point (9 vs 11 chosen to differ).
        assert self._fault_index_for(seed=9)[0] != \
            self._fault_index_for(seed=11)[0]


class TestRetryPolicy:
    def test_retries_then_succeeds_deterministically(self):
        model = CostModel()
        policy = RetryPolicy(model, attempts=4, base_delay_ns=50_000)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise DeviceIOError("EIO")
            return "ok"
        before = model.clock.now_ns
        assert policy.run(flaky) == "ok"
        assert len(calls) == 3
        assert policy.stats.retries == 2
        # Exact exponential backoff on the virtual clock: 50us + 100us.
        assert model.clock.now_ns - before == 150_000

    def test_exhaustion_raises_typed_error(self):
        model = CostModel()
        policy = RetryPolicy(model, attempts=3, base_delay_ns=1000)

        def always_fails():
            raise DeviceIOError("EIO forever")
        before = model.clock.now_ns
        with pytest.raises(RetriesExhaustedError):
            policy.run(always_fails)
        assert policy.stats.exhausted == 1
        assert policy.stats.retries == 2
        assert model.clock.now_ns - before == 1000 + 2000

    def test_non_transient_errors_pass_through(self):
        policy = RetryPolicy(CostModel(), attempts=5)

        def corrupt():
            raise ChecksumMismatchError("bad page")
        with pytest.raises(ChecksumMismatchError):
            policy.run(corrupt)
        assert policy.stats.retries == 0


class TestWalScan:
    def _frames(self, n):
        out = b""
        for seq in range(1, n + 1):
            out += TxnBeginRecord(txn_id=seq).encode(seq)
        return out

    def test_clean_scan_reaches_the_end(self):
        raw = self._frames(5)
        scan = scan_records(raw + b"\x00" * 64)
        assert len(scan.records) == 5
        assert scan.max_seq == 5
        assert scan.stop_reason == "end"
        assert scan.valid_bytes == len(raw)

    def test_tail_damage_stops_scan_with_bad_frame(self):
        raw = bytearray(self._frames(5))
        raw[-3] ^= 0xFF  # corrupt the last frame's CRC
        scan = scan_records(bytes(raw))
        assert len(scan.records) == 4
        assert scan.stop_reason == "bad_frame"
        assert find_frame_beyond(bytes(raw), scan.valid_bytes + 1,
                                 scan.max_seq) is None

    def test_mid_log_damage_leaves_valid_frames_beyond(self):
        frames = [TxnBeginRecord(txn_id=s).encode(s) for s in (1, 2, 3)]
        raw = bytearray(b"".join(frames))
        raw[len(frames[0]) + 6] ^= 0xFF  # corrupt frame 2
        scan = scan_records(bytes(raw))
        assert scan.max_seq == 1
        assert scan.stop_reason == "bad_frame"
        beyond = find_frame_beyond(bytes(raw), scan.valid_bytes + 1,
                                   scan.max_seq)
        assert beyond == len(frames[0]) + len(frames[1])

    def test_stale_lower_seq_frames_do_not_count_as_beyond(self):
        first = TxnBeginRecord(txn_id=9).encode(6)
        damaged = bytearray(TxnCommitRecord(txn_id=9).encode(7))
        damaged[6] ^= 0xFF  # damage the current-pass commit frame
        stale = TxnBeginRecord(txn_id=1).encode(3)  # earlier ring pass
        raw = first + bytes(damaged) + stale
        scan = scan_records(raw)
        assert scan.max_seq == 6
        assert scan.stop_reason == "bad_frame"
        # The stale frame validates structurally but belongs to an older
        # pass (seq 3 <= 6): truncation at the damage stays legal.
        assert find_frame_beyond(raw, scan.valid_bytes + 1,
                                 scan.max_seq) is None


class TestQuarantineAndScrub:
    def _put_one(self, db, data):
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", data)

    def test_scrub_quarantines_rotted_blob(self):
        config = small_config()
        db = BlobDB(config)
        self._put_one(db, b"\x55" * 20_000)
        state = db.get_state("t", b"k")
        pid = state.page_ranges(db.tiers)[0][0]
        db.device._poke(pid, b"rot")
        stats = db.scrub()
        assert stats.blobs_scanned == 1
        assert stats.corrupt_found == 1
        with pytest.raises(ChecksumMismatchError):
            db.read_blob("t", b"k")
        report = db.stats_report()
        assert report.keys_quarantined == 1
        assert report.extents_quarantined >= 1
        assert report.scrub_corrupt_found == 1

    def test_scrub_clean_blob_stays_readable(self):
        db = BlobDB(small_config())
        self._put_one(db, b"\x66" * 9000)
        stats = db.scrub()
        assert stats.blobs_scanned == 1
        assert stats.corrupt_found == 0
        assert db.read_blob("t", b"k") == b"\x66" * 9000

    def test_scrub_charges_the_cost_model(self):
        db = BlobDB(small_config())
        self._put_one(db, b"\x77" * 50_000)
        before = db.model.clock.now_ns
        db.scrub()
        assert db.model.clock.now_ns > before

    def test_deleting_quarantined_blob_clears_the_flag(self):
        db = BlobDB(small_config())
        self._put_one(db, b"\x11" * 5000)
        pid = db.get_state("t", b"k").page_ranges(db.tiers)[0][0]
        db.device._poke(pid, b"xx")
        db.scrub()
        with db.transaction() as txn:
            db.delete_blob(txn, "t", b"k")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x22" * 100)
        assert db.read_blob("t", b"k") == b"\x22" * 100

    def test_recovery_quarantines_checkpointed_rot(self):
        """Snapshot-owned content that rots after its checkpoint has no
        WAL records to repair from: recovery must quarantine, not serve."""
        config = small_config()
        db = BlobDB(config)
        self._put_one(db, b"\x99" * 30_000)
        db.checkpoint()  # key now owned by the snapshot, WAL rewound
        pid = db.get_state("t", b"k").page_ranges(db.tiers)[0][0]
        db.device._poke(pid, b"bitrot")
        recovered = BlobDB.recover(db.crash(), config)
        assert recovered.recovery_info.quarantined == [("t", b"k")]
        with pytest.raises(ChecksumMismatchError):
            recovered.read_blob("t", b"k")
        report = recovered.stats_report()
        assert report.keys_quarantined == 1
        assert report.extents_quarantined >= 1

    def test_recovery_truncates_torn_wal_tail(self):
        config = small_config()
        db = BlobDB(config)
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"a", b"\x01" * 5000)
        db.wal.sync_flush()
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"b", b"\x02" * 5000)
        db.wal.sync_flush()
        # Tear the WAL tail: flip one byte inside the final frame (the
        # second commit record), leaving earlier frames intact.
        tail_off = db.wal._write_off - 5
        pid = config.wal_region_pid + tail_off // config.page_size
        page = bytearray(db.device.peek(pid, 1))
        page[tail_off % config.page_size] ^= 0xFF
        db.device._poke(pid, bytes(page))
        recovered = BlobDB.recover(db.crash(), config)
        assert recovered.recovery_info.wal_records_truncated == 1
        assert recovered.recovery_info.wal_corrupt_pages >= 1
        # Key "a" (before the tear) survives; "b" rolled back or absent.
        assert recovered.read_blob("t", b"a") == b"\x01" * 5000
        assert not recovered.exists("t", b"b")


class TestEngineUnderFaults:
    def test_engine_retries_transient_device_errors(self):
        config = small_config()
        model = CostModel()
        inner = SimulatedNVMe(model, capacity_pages=config.device_pages)
        plan = FaultPlan(FaultSpec(seed=3, transient_error=0.4))
        db = BlobDB(config, device=FaultyNVMe(inner, plan), model=model)
        db.create_table("t")
        payload = b"\xc3" * 30_000
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", payload)
        assert db.read_blob("t", b"k") == payload
        assert plan.stats.transient_errors > 0
        assert db.retry.stats.retries == plan.stats.transient_errors
        assert db.stats_report().io_retries == db.retry.stats.retries

    def test_report_surfaces_fault_counters(self):
        config = small_config()
        model = CostModel()
        inner = SimulatedNVMe(model, capacity_pages=config.device_pages)
        plan = FaultPlan(FaultSpec(seed=4, transient_error=0.5,
                                   latency_spike=0.3))
        db = BlobDB(config, device=FaultyNVMe(inner, plan), model=model)
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x01" * 8000)
        report = db.stats_report()
        assert report.faults_injected == plan.stats.total
        assert report.fault_breakdown == plan.stats.as_dict()
        assert "faults injected" in report.format()


class TestPartitionDraws:
    def test_same_seed_same_partition_schedule(self):
        spec = FaultSpec(seed=21, partition=0.4, partition_max_ns=1e6)
        a, b = FaultPlan(spec), FaultPlan(spec)
        draws_a = [a.draw_partition_ns() for _ in range(60)]
        draws_b = [b.draw_partition_ns() for _ in range(60)]
        assert draws_a == draws_b
        assert a.stats.partitions == b.stats.partitions > 0

    def test_partition_durations_bounded(self):
        plan = FaultPlan(FaultSpec(seed=5, partition=1.0,
                                   partition_max_ns=2e6))
        for _ in range(40):
            ns = plan.draw_partition_ns()
            # Drawn uniformly in [0.5, 1.0] x partition_max_ns.
            assert 1e6 <= ns <= 2e6
        assert plan.stats.partitions == 40
        assert plan.stats.total == 40
        assert plan.stats.as_dict()["partitions"] == 40

    def test_zero_rate_never_partitions_nor_draws(self):
        plan = FaultPlan(FaultSpec(seed=5))
        # A zero-rate draw must not consume RNG state, so interleaving
        # it cannot perturb the other fault schedules.
        with_partitions = [plan.draw_transient() for _ in range(20)]
        plan2 = FaultPlan(FaultSpec(seed=5))
        interleaved = []
        for _ in range(20):
            assert plan2.draw_partition_ns() == 0.0
            interleaved.append(plan2.draw_transient())
        assert with_partitions == interleaved
        assert plan2.stats.partitions == 0


class TestFaultPlanFactory:
    def test_targets_get_independent_but_reproducible_plans(self):
        from repro.storage.faults import FaultPlanFactory, derive_seed

        spec = FaultSpec(seed=77, network_error=0.5)
        fac_a = FaultPlanFactory(spec)
        fac_b = FaultPlanFactory(spec)
        targets = ["g0.m1.link", "g0.m2.link", "g1.m1.link"]
        draws_a = {t: [fac_a.plan_for(t).draw_network_fault()
                       for _ in range(40)] for t in targets}
        draws_b = {t: [fac_b.plan_for(t).draw_network_fault()
                       for _ in range(40)] for t in targets}
        # Reproducible: same base seed + target -> same schedule ...
        assert draws_a == draws_b
        # ... yet independent: distinct targets get distinct schedules.
        assert draws_a["g0.m1.link"] != draws_a["g0.m2.link"]
        seeds = {derive_seed(77, t) for t in targets}
        assert len(seeds) == len(targets)

    def test_plan_for_caches_and_stats_aggregate(self):
        from repro.storage.faults import FaultPlanFactory

        fac = FaultPlanFactory(FaultSpec(seed=1, network_error=1.0))
        plan = fac.plan_for("x")
        assert fac.plan_for("x") is plan
        plan.draw_network_fault()
        fac.plan_for("y").draw_network_fault()
        assert fac.stats().network_errors == 2


class TestFaultyNVMeAfterRecovery:
    """Regression: faulting a crashed-then-recovered device.

    ``BlobDB.crash()`` hands back the (fault-wrapped) device and
    ``BlobDB.recover`` immediately calls state methods like
    ``verify_range`` on it.  The wrapper's ``__getattr__`` must forward
    those with fault *accounting* (latency spikes on the shared clock)
    but never inject failures — recovery calls them without retry.
    """

    def test_recovery_over_faulty_wrapper_keeps_accounting(self):
        config = small_config()
        model = CostModel()
        inner = SimulatedNVMe(model, capacity_pages=config.device_pages)
        plan = FaultPlan(FaultSpec(seed=9, latency_spike=1.0,
                                   latency_spike_ns=100_000.0))
        db = BlobDB(config, device=FaultyNVMe(inner, plan), model=model)
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x07" * 9000)
        device = db.crash()
        assert isinstance(device, FaultyNVMe)  # wrapper identity survives
        spikes_before = plan.stats.latency_spikes
        db2 = BlobDB.recover(device, config, model=model)
        assert db2.read_blob("t", b"k") == b"\x07" * 9000
        # Recovery's verify_range calls went through the wrapper and
        # were accounted as latency spikes, not injected as failures.
        assert plan.stats.latency_spikes > spikes_before

    def test_state_method_forwarding_charges_spike(self):
        dev, model = make_device(protect=True)
        dev.write(0, b"\xaa" * 4096)
        plan = FaultPlan(FaultSpec(seed=2, latency_spike=1.0,
                                   latency_spike_ns=50_000.0))
        faulty = FaultyNVMe(dev, plan)
        before_ns = model.clock.now_ns
        assert faulty.check_page(0)
        assert model.clock.now_ns - before_ns >= 50_000
        assert plan.stats.latency_spikes == 1
        # Forwarded state methods are infallible by design: even a
        # plan that injects transients must not fail verify_range.
        plan2 = FaultPlan(FaultSpec(seed=2, transient_error=1.0))
        faulty2 = FaultyNVMe(dev, plan2)
        assert faulty2.verify_range(0, 1) == []
        assert plan2.stats.transient_errors == 0

    def test_getattr_recursion_guard(self):
        import copy

        dev, _ = make_device()
        faulty = FaultyNVMe(dev, FaultPlan(FaultSpec(seed=0)))
        # copy/pickle probe dunder-adjacent attrs before __init__ runs;
        # the guard must raise AttributeError instead of recursing.
        clone = copy.copy(faulty)
        assert clone.inner is dev
        with pytest.raises(AttributeError):
            faulty.no_such_attribute
