"""Tests for hasher selection/fallback and the logging policies."""

import hashlib

import pytest

from repro.core.hashing import new_hasher, resume_or_rehash
from repro.core.log_policy import (
    AsyncBlobLogging,
    PhysicalLogging,
    make_policy,
)
from repro.db import BlobDB, EngineConfig
from repro.sha.fast import FastSha256, simulate_state_loss
from repro.sha.sha256 import Sha256


class TestHasherSelection:
    def test_new_hasher_kinds(self):
        assert isinstance(new_hasher("reference"), Sha256)
        assert isinstance(new_hasher("fast"), FastSha256)
        with pytest.raises(ValueError):
            new_hasher("md5")

    def test_resume_reference_state(self):
        state = Sha256(b"prefix-").state()
        hasher = resume_or_rehash("reference", state, lambda: [b"unused"])
        hasher.update(b"suffix")
        assert hasher.digest() == hashlib.sha256(b"prefix-suffix").digest()

    def test_resume_fast_state(self):
        state = FastSha256(b"prefix-").state()
        hasher = resume_or_rehash("fast", state, lambda: [b"unused"])
        hasher.update(b"suffix")
        assert hasher.digest() == hashlib.sha256(b"prefix-suffix").digest()

    def test_fast_falls_back_after_state_loss(self):
        state = FastSha256(b"prefix-").state()
        simulate_state_loss()
        hasher = resume_or_rehash("fast", state, lambda: [b"pre", b"fix-"])
        hasher.update(b"suffix")
        assert hasher.digest() == hashlib.sha256(b"prefix-suffix").digest()

    def test_reference_never_resumes_fast_token(self):
        """A token-based fast state must not be misread as chaining."""
        state = FastSha256(b"prefix-").state()
        hasher = resume_or_rehash("reference", state,
                                  lambda: [b"prefix-"])
        hasher.update(b"suffix")
        assert hasher.digest() == hashlib.sha256(b"prefix-suffix").digest()


def engine(policy: str, **overrides):
    defaults = dict(device_pages=16384, wal_pages=2048, catalog_pages=256,
                    buffer_pool_pages=4096, log_policy=policy)
    defaults.update(overrides)
    db = BlobDB(EngineConfig(**defaults))
    db.create_table("t")
    return db


class TestPolicyFactory:
    def test_make_policy(self):
        db = engine("async-blob")
        assert isinstance(make_policy("async-blob", db.wal),
                          AsyncBlobLogging)
        assert isinstance(make_policy("physlog", db.wal), PhysicalLogging)
        with pytest.raises(ValueError):
            make_policy("quantum", db.wal)


class TestAsyncPolicy:
    def test_wal_carries_only_metadata(self):
        db = engine("async-blob")
        payload = b"\x61" * 300_000
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", payload)
        wal_bytes = db.device.stats.bytes_written_by_category["wal"]
        assert wal_bytes < 16_384  # Blob State + txn records only

    def test_extents_clean_after_commit(self):
        db = engine("async-blob")
        with db.transaction() as txn:
            state = db.put_blob(txn, "t", b"k", b"\x62" * 100_000)
        for pid, _ in state.page_ranges(db.tiers):
            frame = db.pool.get_frame(pid)
            assert frame is not None
            assert not frame.is_dirty
            assert not frame.prevent_evict

    def test_prevent_evict_held_until_commit(self):
        db = engine("async-blob")
        txn = db.begin()
        state = db.put_blob(txn, "t", b"k", b"\x63" * 100_000)
        frames = [db.pool.get_frame(pid)
                  for pid, _ in state.page_ranges(db.tiers)]
        assert all(f.prevent_evict for f in frames)
        db.commit(txn)
        assert all(not f.prevent_evict for f in frames)


class TestPhyslogPolicy:
    def test_wal_carries_content(self):
        db = engine("physlog")
        payload = b"\x64" * 300_000
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", payload)
        wal_bytes = db.device.stats.bytes_written_by_category["wal"]
        assert wal_bytes >= len(payload)

    def test_extents_stay_dirty_after_commit(self):
        """The second write is deferred to eviction/checkpoint."""
        db = engine("physlog")
        with db.transaction() as txn:
            state = db.put_blob(txn, "t", b"k", b"\x65" * 100_000)
        dirty = [db.pool.get_frame(pid).is_dirty
                 for pid, _ in state.page_ranges(db.tiers)]
        assert any(dirty)
        data_before = db.device.stats.bytes_written_by_category["data"]
        db.checkpoint()
        data_after = db.device.stats.bytes_written_by_category["data"]
        assert data_after - data_before >= 100_000  # the second copy

    def test_segmented_appends_flush_synchronously(self):
        db = engine("physlog", wal_buffer_bytes=65536)
        sync_before = db.wal.stats.synchronous_flushes
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"\x66" * 500_000)
        assert db.wal.stats.synchronous_flushes - sync_before >= 7
