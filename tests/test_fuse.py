"""Tests for the FUSE VFS and the POSIX mount facade (Section III-E)."""

import errno
import io

import pytest

from repro.db import BlobDB, EngineConfig
from repro.fuse import BlobFuse, FuseError, FuseMount


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


@pytest.fixture
def db():
    database = BlobDB(small_config())
    database.create_table("image")
    database.create_table("document")
    with database.transaction() as txn:
        database.put_blob(txn, "image", b"cat.jpg", b"\xff\xd8meow" * 1000)
        database.put_blob(txn, "image", b"dog.jpg", b"\xff\xd8woof")
        database.put_blob(txn, "document", b"a.txt", b"hello world")
    return database


@pytest.fixture
def fuse(db):
    return BlobFuse(db)


class TestGetattr:
    def test_file_attributes(self, fuse):
        attr = fuse.getattr("/image/cat.jpg")
        assert not attr.is_dir
        assert attr.st_size == len(b"\xff\xd8meow" * 1000)

    def test_file_is_read_only(self, fuse):
        attr = fuse.getattr("/image/cat.jpg")
        assert attr.st_mode & 0o222 == 0  # no write bits

    def test_table_is_directory(self, fuse):
        assert fuse.getattr("/image").is_dir

    def test_root_is_directory(self, fuse):
        assert fuse.getattr("/").is_dir

    def test_missing_file_enoent(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.getattr("/image/missing.jpg")
        assert exc.value.errno == errno.ENOENT

    def test_missing_table_enoent(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.getattr("/nope")
        assert exc.value.errno == errno.ENOENT

    def test_deep_path_enoent(self, fuse):
        with pytest.raises(FuseError):
            fuse.getattr("/image/sub/dir.jpg")


class TestReaddir:
    def test_root_lists_tables(self, fuse):
        entries = fuse.readdir("/")
        assert "image" in entries and "document" in entries

    def test_table_lists_files(self, fuse):
        entries = fuse.readdir("/image")
        assert "cat.jpg" in entries and "dog.jpg" in entries

    def test_readdir_on_file_raises(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.readdir("/image/cat.jpg")
        assert exc.value.errno == errno.ENOTDIR


class TestOpenReadClose:
    def test_read_full_file(self, fuse):
        fh = fuse.open("/document/a.txt")
        assert fuse.read(fh, 1024, 0) == b"hello world"
        fuse.release(fh)

    def test_pread_with_offset(self, fuse):
        fh = fuse.open("/document/a.txt")
        assert fuse.read(fh, 5, 6) == b"world"
        fuse.release(fh)

    def test_read_past_eof_returns_empty(self, fuse):
        fh = fuse.open("/document/a.txt")
        assert fuse.read(fh, 10, 100) == b""
        fuse.release(fh)

    def test_read_clamps_size_listing1(self, fuse):
        """Listing 1: size = min(size, state->size - offset)."""
        fh = fuse.open("/document/a.txt")
        assert fuse.read(fh, 1000, 8) == b"rld"
        fuse.release(fh)

    def test_open_starts_transaction_release_commits(self, fuse, db):
        fh = fuse.open("/document/a.txt")
        assert len(db._active) == 1
        fuse.release(fh)
        assert len(db._active) == 0

    def test_open_missing_file(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.open("/document/missing")
        assert exc.value.errno == errno.ENOENT

    def test_open_missing_aborts_transaction(self, fuse, db):
        with pytest.raises(FuseError):
            fuse.open("/document/missing")
        assert len(db._active) == 0

    def test_open_directory_eisdir(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.open("/image")
        assert exc.value.errno == errno.EISDIR

    def test_bad_handle_ebadf(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.read(999, 10, 0)
        assert exc.value.errno == errno.EBADF

    def test_flush_then_release(self, fuse):
        fh = fuse.open("/document/a.txt")
        fuse.flush(fh)
        fuse.release(fh)  # must not double-commit

    def test_write_operations_erofs(self, fuse):
        fh = fuse.open("/document/a.txt")
        for call in (lambda: fuse.open("/document/a.txt", write=True),
                     lambda: fuse.write(fh, b"x", 0),
                     lambda: fuse.truncate("/document/a.txt", 0),
                     lambda: fuse.unlink("/document/a.txt"),
                     lambda: fuse.mkdir("/newdir")):
            with pytest.raises(FuseError) as exc:
                call()
            assert exc.value.errno == errno.EROFS
        fuse.release(fh)

    def test_reads_in_one_open_are_consistent(self, fuse, db):
        """The wrapping transaction isolates the reader from writers."""
        fh = fuse.open("/document/a.txt")
        first = fuse.read(fh, 5, 0)
        # A concurrent writer now conflicts on the lock (2PL no-wait).
        from repro.db.errors import TransactionConflict
        writer = db.begin()
        with pytest.raises(TransactionConflict):
            db.delete_blob(writer, "document", b"a.txt")
        db.abort(writer)
        assert fuse.read(fh, 5, 0) == first
        fuse.release(fh)


class TestFuseMount:
    def test_open_read_close_like_a_file(self, db):
        mount = FuseMount(db)
        with mount.open("/image/dog.jpg") as f:
            assert f.read() == b"\xff\xd8woof"

    def test_mountpoint_prefix_stripped(self, db):
        mount = FuseMount(db, mountpoint="/mnt/blobdb")
        assert mount.read_bytes("/mnt/blobdb/image/dog.jpg") == b"\xff\xd8woof"

    def test_seek_and_tell(self, db):
        mount = FuseMount(db)
        with mount.open("/document/a.txt") as f:
            f.seek(6)
            assert f.tell() == 6
            assert f.read(5) == b"world"
            f.seek(-5, io.SEEK_END)
            assert f.read() == b"world"
            f.seek(0)
            f.seek(2, io.SEEK_CUR)
            assert f.read(3) == b"llo"

    def test_incremental_reads_advance_position(self, db):
        mount = FuseMount(db)
        with mount.open("/document/a.txt") as f:
            assert f.read(5) == b"hello"
            assert f.read(1) == b" "
            assert f.read() == b"world"

    def test_write_mode_rejected(self, db):
        mount = FuseMount(db)
        with pytest.raises(OSError):
            mount.open("/image/cat.jpg", mode="wb")

    def test_write_call_rejected(self, db):
        mount = FuseMount(db)
        with mount.open("/document/a.txt") as f:
            with pytest.raises(OSError):
                f.write(b"nope")

    def test_closed_file_rejects_io(self, db):
        mount = FuseMount(db)
        f = mount.open("/document/a.txt")
        f.close()
        with pytest.raises(ValueError):
            f.read()

    def test_listdir_and_walk(self, db):
        mount = FuseMount(db)
        assert sorted(mount.listdir("/")) == ["document", "image"]
        assert sorted(mount.listdir("/image")) == [b"cat.jpg".decode(),
                                                   "dog.jpg"]
        walked = dict(mount.walk())
        assert "cat.jpg" in walked["image"]

    def test_stat_and_exists(self, db):
        mount = FuseMount(db)
        assert mount.stat("/document/a.txt").st_size == 11
        assert mount.exists("/document/a.txt")
        assert not mount.exists("/document/missing.txt")

    def test_unmodified_consumer_code(self, db):
        """A 'third party' function written for real files works as-is."""
        def count_words(fileobj) -> int:
            return len(fileobj.read().split())

        mount = FuseMount(db)
        with mount.open("/document/a.txt") as f:
            assert count_words(f) == 2

    def test_file_is_buffered_readable(self, db):
        """DbFile integrates with io.BufferedReader like any raw file."""
        mount = FuseMount(db)
        raw = mount.open("/document/a.txt")
        buffered = io.BufferedReader(raw)
        assert buffered.read(5) == b"hello"
        buffered.close()
