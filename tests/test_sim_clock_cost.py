"""Tests for the virtual clock and cost model."""

import pytest

from repro.sim.clock import Stopwatch, VirtualClock
from repro.sim.cost import CostModel, CostParams, PerfCounters, SYSCALL_NS


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now_ns == 350

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ns=-5)

    def test_advance_to_is_monotonic(self):
        clock = VirtualClock()
        clock.advance_to(500)
        clock.advance_to(100)  # no-op: time never goes backwards
        assert clock.now_ns == 500

    def test_unit_conversions(self):
        clock = VirtualClock(start_ns=2_500_000_000)
        assert clock.now_s == 2.5
        assert clock.now_ms == 2500.0
        assert clock.now_us == 2_500_000.0

    def test_stopwatch_measures_region(self):
        clock = VirtualClock()
        clock.advance(10)
        with Stopwatch(clock) as sw:
            clock.advance(42)
        assert sw.elapsed_ns == 42


class TestCostParams:
    def test_copy_with_override(self):
        base = CostParams()
        faster = base.copy(memcpy_ns_per_byte=0.01)
        assert faster.memcpy_ns_per_byte == 0.01
        assert base.memcpy_ns_per_byte != 0.01
        assert faster.ssd_read_latency_ns == base.ssd_read_latency_ns

    def test_copy_rejects_unknown_parameter(self):
        with pytest.raises(TypeError):
            CostParams().copy(warp_drive_ns=1.0)


class TestCostModel:
    def test_syscall_charges_known_price(self):
        model = CostModel()
        model.syscall("open")
        assert model.clock.now_ns == int(SYSCALL_NS["open"])
        assert model.counters.kernel_cycles > 0

    def test_unknown_syscall_uses_generic_price(self):
        model = CostModel()
        model.syscall("frobnicate")
        assert model.clock.now_ns == int(SYSCALL_NS["generic"])

    def test_memcpy_scales_with_bytes(self):
        model = CostModel()
        model.memcpy(1_000_000)
        t1 = model.clock.now_ns
        model.memcpy(2_000_000)
        assert model.clock.now_ns - t1 == pytest.approx(2 * t1, rel=0.01)

    def test_memcpy_tracks_bandwidth_demand(self):
        model = CostModel()
        model.memcpy(4096)
        model.kernel_copy(4096)
        assert model.memcpy_bytes == 8192
        assert model.memory_time_ns > 0

    def test_memcpy_with_faults_charges_kernel_time(self):
        plain = CostModel()
        plain.memcpy(64 * 1024)
        faulting = CostModel()
        faulting.memcpy(64 * 1024, faults=True)
        assert faulting.clock.now_ns > plain.clock.now_ns
        assert faulting.counters.kernel_cycles > plain.counters.kernel_cycles

    def test_memory_contention_slows_copies(self):
        model = CostModel()
        model.memcpy(1_000_000)
        base = model.clock.now_ns
        model.memory_contention = 2.0
        model.memcpy(1_000_000)
        assert model.clock.now_ns - base == pytest.approx(2 * base, rel=0.01)

    def test_io_batch_overlaps_latency(self):
        """32 batched 4K reads pay one latency wave, not 32 latencies."""
        params = CostParams()
        batched = CostModel(params)
        batched.ssd_read(32 * 4096, requests=32)
        serial = CostModel(params)
        for _ in range(32):
            serial.ssd_read(4096, requests=1)
        assert batched.clock.now_ns < serial.clock.now_ns / 10

    def test_io_batch_beyond_queue_depth_pays_extra_wave(self):
        params = CostParams(ssd_queue_depth=4)
        model = CostModel(params)
        model.ssd_read(8 * 4096, requests=8)  # two waves of four
        expected_latency = 2 * params.ssd_read_latency_ns
        assert model.clock.now_ns >= expected_latency

    def test_ipc_roundtrip_charges_serialization(self):
        empty = CostModel()
        empty.ipc_roundtrip(0)
        loaded = CostModel()
        loaded.ipc_roundtrip(100_000)
        assert loaded.clock.now_ns > empty.clock.now_ns

    def test_contended_latch_costs_more(self):
        model = CostModel()
        model.latch(contended=False)
        base = model.clock.now_ns
        model.latch(contended=True)
        assert model.clock.now_ns - base > base

    def test_hash_charge_scales(self):
        model = CostModel()
        model.hash_bytes(1 << 20)
        assert model.clock.now_ns == pytest.approx(
            (1 << 20) * model.params.hash_ns_per_byte, rel=0.01)


class TestPerfCounters:
    def test_snapshot_and_delta(self):
        model = CostModel()
        model.syscall("open")
        snap = model.counters.snapshot()
        model.syscall("close")
        delta = model.counters.delta_since(snap)
        assert delta.kernel_cycles == pytest.approx(
            SYSCALL_NS["close"] / 0.2, rel=0.01)

    def test_add_merges_counters(self):
        a = PerfCounters(instructions=1, cycles=2, kernel_cycles=3, cache_misses=4)
        b = PerfCounters(instructions=10, cycles=20, kernel_cycles=30, cache_misses=40)
        a.add(b)
        assert (a.instructions, a.cycles, a.kernel_cycles, a.cache_misses) == \
            (11, 22, 33, 44)

    def test_interleaved_snapshots_partition_charges(self):
        """Back-to-back deltas must tile the total with nothing counted
        twice or lost, however charging interleaves with snapshots."""
        model = CostModel()
        base = model.counters.snapshot()
        model.memcpy(1 << 16)
        mid = model.counters.snapshot()
        model.syscall("fsync")
        model.crc32_bytes(4096)
        end = model.counters.snapshot()
        first = mid.delta_since(base)
        second = end.delta_since(mid)
        total = end.delta_since(base)
        for name in ("instructions", "cycles", "kernel_cycles",
                     "cache_misses"):
            assert getattr(first, name) + getattr(second, name) == \
                getattr(total, name), name
        assert first.kernel_cycles == 0   # memcpy never enters the kernel
        assert second.kernel_cycles > 0   # fsync does

    def test_snapshot_is_isolated_from_later_charging(self):
        model = CostModel()
        model.cpu(500.0)
        snap = model.counters.snapshot()
        before = snap.cycles
        model.syscall("open")
        model.ssd_write(8 * 4096)
        assert snap.cycles == before  # old snapshots never mutate
        delta = model.counters.delta_since(snap)
        assert delta.cycles == model.counters.cycles - before
