"""Tests for the stats report, FUSE xattrs/statfs, and pool parity."""

import errno
import hashlib

import pytest

from repro.db import BlobDB, EngineConfig
from repro.fuse import BlobFuse, FuseError


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class TestStatsReport:
    def test_report_reflects_activity(self):
        db = BlobDB(small_config())
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"x" * 100_000)
        db.read_blob("t", b"k")
        report = db.stats_report()
        assert report.pool_used_pages > 0
        assert report.device_bytes_written_by_category["data"] >= 100_000
        assert report.wal_records >= 3  # begin, insert, commit
        assert report.allocator_utilization > 0
        assert report.active_transactions == 0
        assert report.simulated_seconds > 0

    def test_reuse_ratio(self):
        db = BlobDB(small_config())
        db.create_table("t")
        for i in range(4):
            with db.transaction() as txn:
                db.put_blob(txn, "t", b"k", b"y" * 50_000)
            with db.transaction() as txn:
                db.delete_blob(txn, "t", b"k")
        report = db.stats_report()
        assert report.extent_reuse_ratio > 0.5
        assert report.extents_freed > 0

    def test_format_is_readable(self):
        db = BlobDB(small_config())
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"z" * 10_000)
        text = db.stats_report().format()
        assert "buffer pool" in text
        assert "wal:" in text
        assert "allocator" in text

    def test_fresh_engine_report_has_no_zero_division(self):
        """A never-used engine must report clean zeros, not crash.

        Regression test for the ratio fields (``pool_hit_ratio``,
        ``wal_used_fraction``, ``allocator_utilization``): all of their
        denominators are zero or may be zero on a freshly opened engine.
        """
        db = BlobDB(small_config())
        report = db.stats_report()
        assert report.pool_hit_ratio == 0.0
        assert report.allocator_utilization == 0.0
        assert 0.0 <= report.wal_used_fraction <= 1.0
        assert report.pool_fill_fraction == 0.0
        assert report.extent_reuse_ratio == 0.0
        assert isinstance(report.format(), str)  # formats without error

    def test_degenerate_ratio_sources_guarded(self):
        """The ratio providers themselves tolerate zero denominators."""
        from repro.buffer.pool import PoolStats
        from repro.core.allocator import ExtentAllocator
        from repro.core.tier import TierTable

        assert PoolStats().hit_ratio == 0.0
        alloc = ExtentAllocator(TierTable(), first_pid=0, capacity_pages=8)
        alloc.capacity_pages = 0  # simulate a zero-sized data area
        assert alloc.utilization() == 0.0

    def test_occ_aborts_counted(self):
        from repro.db.errors import TransactionConflict
        db = BlobDB(small_config(concurrency="occ"))
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"v")
        reader = db.begin()
        db.read_blob("t", b"k", txn=reader)
        with db.transaction() as writer:
            db.append_blob(writer, "t", b"k", b"!")
        with pytest.raises(TransactionConflict):
            db.commit(reader)
        assert db.stats_report().occ_aborts == 1


class TestFuseXattrs:
    @pytest.fixture
    def fuse(self):
        db = BlobDB(small_config())
        db.create_table("image")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"cat.jpg", b"\xff\xd8meow" * 100)
        return BlobFuse(db)

    def test_sha256_xattr(self, fuse):
        digest = fuse.getxattr("/image/cat.jpg", "user.sha256")
        expected = hashlib.sha256(b"\xff\xd8meow" * 100).hexdigest()
        assert digest.decode() == expected

    def test_size_and_extent_xattrs(self, fuse):
        assert fuse.getxattr("/image/cat.jpg", "user.size") == b"600"
        extents = int(fuse.getxattr("/image/cat.jpg", "user.extents"))
        assert extents >= 1

    def test_listxattr(self, fuse):
        names = fuse.listxattr("/image/cat.jpg")
        assert "user.sha256" in names

    def test_unknown_xattr(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.getxattr("/image/cat.jpg", "user.nope")
        assert exc.value.errno == errno.ENODATA

    def test_xattr_on_missing_file(self, fuse):
        with pytest.raises(FuseError) as exc:
            fuse.getxattr("/image/missing", "user.sha256")
        assert exc.value.errno == errno.ENOENT

    def test_statfs(self, fuse):
        stats = fuse.statfs("/")
        assert stats["f_bsize"] == 4096
        assert 0 < stats["f_blocks"]
        assert stats["f_bfree"] < stats["f_blocks"]
        assert stats["f_files"] == 1


class TestPoolParity:
    """The two buffer pools must be behaviourally identical — only their
    costs differ."""

    @pytest.mark.parametrize("seed", range(3))
    def test_same_operations_same_contents(self, seed):
        import random
        dbs = {pool: BlobDB(small_config(pool=pool, eviction_seed=seed))
               for pool in ("vmcache", "hashtable")}
        for db in dbs.values():
            db.create_table("t")
        rng = random.Random(seed)
        keys = [b"k%d" % i for i in range(6)]
        for step in range(60):
            key = rng.choice(keys)
            op = rng.random()
            datum = bytes([step % 256]) * rng.choice((100, 9000, 70_000))
            for db in dbs.values():
                exists = db.exists("t", key)
                with db.transaction() as txn:
                    if not exists:
                        db.put_blob(txn, "t", key, datum)
                    elif op < 0.4:
                        db.delete_blob(txn, "t", key)
                    elif op < 0.7:
                        db.append_blob(txn, "t", key, datum[:1000])
                    else:
                        db.update_blob_range(txn, "t", key, 0,
                                             datum[:50])
        vm, ht = dbs["vmcache"], dbs["hashtable"]
        for key in keys:
            assert vm.exists("t", key) == ht.exists("t", key)
            if vm.exists("t", key):
                assert vm.read_blob("t", key) == ht.read_blob("t", key)
