"""Tests for the AST determinism linter (``repro.analysis.lint``)."""

import json
import os
import textwrap

from repro.analysis.lint import (
    Finding,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_suppressions,
    render_json,
)
from repro.analysis.rules import ALL_RULES

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")
REPO_EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run(source: str, path: str = "src/repro/fake.py") -> list[Finding]:
    return lint_source(path, textwrap.dedent(source))


def rules_of(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


class TestWallClockRule:
    def test_flags_time_time(self):
        findings = run("""
            import time
            def stamp():
                return time.time()
        """)
        assert rules_of(findings) == {"RPR001"}
        assert findings[0].line == 4

    def test_flags_datetime_now_and_sleep(self):
        findings = run("""
            import datetime, time
            a = datetime.datetime.now()
            b = datetime.date.today()
            time.sleep(1)
        """)
        assert [f.rule for f in findings] == ["RPR001"] * 3

    def test_clean_virtual_clock_use(self):
        findings = run("""
            def stamp(model):
                return model.clock.now_ns
        """)
        assert findings == []

    def test_exempt_in_clock_module(self):
        source = "import time\nnow = time.monotonic_ns()\n"
        assert lint_source("src/repro/sim/clock.py", source) == []
        assert rules_of(lint_source("src/repro/sim/other.py", source)) \
            == {"RPR001"}


class TestUnseededRandomRule:
    def test_flags_global_random_functions(self):
        findings = run("""
            import random
            x = random.random()
            random.shuffle([1, 2])
        """)
        assert [f.rule for f in findings] == ["RPR002", "RPR002"]

    def test_flags_unseeded_random_and_entropy(self):
        findings = run("""
            import os, random, uuid
            rng = random.Random()
            key = os.urandom(16)
            tag = uuid.uuid4()
        """)
        assert [f.rule for f in findings] == ["RPR002"] * 3

    def test_clean_seeded_random(self):
        findings = run("""
            import random
            rng = random.Random(42)
            rng2 = random.Random(seed)
            x = rng.random()
        """)
        assert findings == []


class TestSetOrderRule:
    def test_flags_for_over_set_literal(self):
        findings = run("""
            for x in {3, 1, 2}:
                print(x)
        """)
        assert rules_of(findings) == {"RPR003"}

    def test_flags_comprehension_and_sinks(self):
        findings = run("""
            out = [x for x in set(items)]
            pairs = list({1, 2})
            text = ",".join({a for a in names})
        """)
        assert [f.rule for f in findings] == ["RPR003"] * 3

    def test_clean_sorted_and_membership(self):
        findings = run("""
            for x in sorted(set(items)):
                print(x)
            ok = value in {1, 2, 3}
            keys = sorted({k for k in table})
        """)
        assert findings == []


class TestHostFileIoRule:
    def test_flags_open_and_os_calls(self):
        findings = run("""
            import os
            fh = open("x.txt")
            os.remove("x.txt")
        """)
        assert [f.rule for f in findings] == ["RPR004", "RPR004"]

    def test_flags_tempfile_import_and_pathlib_write(self):
        findings = run("""
            import tempfile
            path.write_text("data")
        """)
        assert [f.rule for f in findings] == ["RPR004", "RPR004"]

    def test_clean_blob_api_read_bytes(self):
        # The engine's own BlobManager.read_bytes must not trip the
        # pathlib heuristic.
        findings = run("""
            data = self.blobs.read_bytes(state)
        """)
        assert findings == []

    def test_clean_device_io(self):
        findings = run("""
            payload = self.device.read(pid, npages)
            self.device.write(pid, payload)
        """)
        assert findings == []


class TestHostNetExecRule:
    def test_flags_socket_and_subprocess(self):
        findings = run("""
            import socket
            import subprocess
            subprocess.call(["ls"])
        """)
        assert [f.rule for f in findings] == ["RPR005"] * 3

    def test_flags_os_system(self):
        findings = run("""
            import os
            os.system("true")
        """)
        assert rules_of(findings) == {"RPR005"}

    def test_clean_simulated_transport(self):
        findings = run("""
            from repro.net.transport import Link
            link.send(b"payload")
        """)
        assert findings == []


class TestSubstrateBypassRule:
    def test_flags_peek_and_private_state(self):
        findings = run("""
            raw = self.device.peek(pid, 1)
            pages = self.device._pages
            inner._poke(pid, 0, b"x")
        """)
        assert [f.rule for f in findings] == ["RPR006"] * 3

    def test_exempt_inside_storage_layer(self):
        source = "raw = self.device.peek(pid, 1)\n"
        assert lint_source("src/repro/storage/faults.py", source) == []

    def test_flags_raw_scatter_gather_outside_io_layer(self):
        findings = run("""
            data = self.device._gather(pid, npages)
            inner._scatter(pid, payload)
        """)
        assert [f.rule for f in findings] == ["RPR006"] * 2

    def test_exempt_inside_io_scheduler_layer(self):
        source = ("data = self.device._gather(pid, npages)\n"
                  "self.device._scatter(pid, payload)\n")
        assert lint_source("src/repro/io/scheduler.py", source) == []

    def test_clean_unrelated_scatter(self):
        # numpy-style scatter on a non-device receiver is not flagged.
        findings = run("plot._scatter(xs, ys)\n")
        assert findings == []

    def test_clean_unrelated_peek(self):
        # A token cursor's .peek() is not device access.
        findings = run("""
            token = self.cursor.peek()
            rows = self._pages()
        """)
        assert findings == []

    def test_flags_replica_member_device_bypass(self):
        # The replica layer's receivers hold fault-wrapped devices too:
        # reaching into a member's or the primary's raw pages bypasses
        # that member's cost model *and* its fault plan.
        findings = run("""
            pages = member.device._pages
            raw = self.primary.device.peek(pid, 1)
            replica._poke(pid, 0, b"x")
        """, path="src/repro/replica/group.py")
        assert [f.rule for f in findings] == ["RPR006"] * 3

    def test_replica_layer_not_storage_exempt(self):
        # src/repro/replica/ is NOT an allowed path for raw access —
        # only the storage substrate and the I/O scheduler are.
        source = "raw = member.device.peek(pid, 1)\n"
        assert rules_of(lint_source("src/repro/replica/group.py",
                                    source)) == {"RPR006"}

    def test_flags_pmem_persist_bypass(self):
        # _splice_bytes/peek_bytes move bytes without the cache-line
        # flush + fence pricing of write_bytes — the PMem equivalent of
        # _poke/peek — and stripe members are device receivers too.
        findings = run("""
            pmem._splice_bytes(off, payload)
            raw = self.pmem_device.peek_bytes(off, n)
            stripe.members[0]._poke(pid, b"x")
        """, path="src/repro/wal/writer.py")
        assert [f.rule for f in findings] == ["RPR006"] * 3

    def test_pmem_bypass_exempt_inside_storage_layer(self):
        source = ("pmem._splice_bytes(off, payload)\n"
                  "raw = self.inner.peek_bytes(off, n)\n")
        assert lint_source("src/repro/storage/faults.py", source) == []

    def test_flags_lindex_and_namespace_bypass(self):
        # The adaptive-indexing layer sits on the priced substrate too:
        # reaching around a learned index or the interval numbering to
        # raw pages skips the probe/retrain charges.
        findings = run("""
            pages = self.lindex.device._pages
            raw = namespace_idx.peek(0, 1)
            crc = lindex._page_crc
        """, path="src/repro/lindex/learned.py")
        assert [f.rule for f in findings] == ["RPR006"] * 3

    def test_clean_lindex_and_namespace_public_api(self):
        # The priced public surface of both subsystems is fine anywhere.
        findings = run("""
            hits = list(lindex.scan(lo, hi))
            nodes = namespace_idx.subtree(root)
            val = self.lindex.lookup(key)
        """)
        assert findings == []

    def test_clean_byte_append_fast_path(self):
        # The priced public byte API is fine anywhere: write_bytes /
        # read_bytes on a device receiver charge the cost model.
        findings = run("""
            self.device.write_bytes(off, chunk, category="wal")
            raw = self.device.read_bytes(off, n)
        """, path="src/repro/wal/writer.py")
        assert findings == []


class TestSuppressions:
    def test_parse(self):
        sup = parse_suppressions(
            "a = 1\n"
            "b = open('x')  # repro: allow[RPR004]\n"
            "c = 2  # repro: allow[RPR001, RPR004]\n")
        assert sup == {2: {"RPR004"}, 3: {"RPR001", "RPR004"}}

    def test_matching_id_suppresses(self):
        findings = run("""
            fh = open("x.txt")  # repro: allow[RPR004] host artifact
        """)
        assert findings == []

    def test_wrong_id_does_not_suppress(self):
        findings = run("""
            fh = open("x.txt")  # repro: allow[RPR001] mislabeled
        """)
        assert rules_of(findings) == {"RPR004"}

    def test_multiline_statement_covered_by_last_line(self):
        findings = run("""
            fh = open(
                "x.txt")  # repro: allow[RPR004] host artifact
        """)
        assert findings == []


class TestSchedulerPackage:
    """The traffic scheduler is determinism-critical: a wall clock or an
    unseeded draw in an arrival generator silently de-determinizes every
    schedule downstream.  The linter must police ``repro/sched`` like
    any engine module — no special-case exemption."""

    SCHED = "src/repro/sched/arrivals.py"

    def test_flags_wall_clock_in_arrival_generator(self):
        findings = run("""
            import time
            def poisson_arrivals(rate, n):
                start = time.time()
                return [start + i / rate for i in range(n)]
            """, path=self.SCHED)
        assert rules_of(findings) == {"RPR001"}

    def test_flags_unseeded_interarrival_draws(self):
        findings = run("""
            import random
            def gaps(rate, n):
                return [random.expovariate(rate) for _ in range(n)]
            def jitter():
                return random.Random().random()
            """, path=self.SCHED)
        assert [f.rule for f in findings] == ["RPR002", "RPR002"]

    def test_flags_newly_covered_variates(self):
        """The rule knows the full ``random`` variate family — the
        thinning sampler could plausibly reach for any of them."""
        findings = run("""
            import random
            a = random.paretovariate(2.0)
            b = random.weibullvariate(1.0, 1.5)
            c = random.gammavariate(2.0, 0.5)
            """, path=self.SCHED)
        assert [f.rule for f in findings] == ["RPR002"] * 3

    def test_clean_seeded_generator_passes(self):
        findings = run("""
            import random
            def poisson_arrivals(rate, n, rng):
                t = 0.0
                out = []
                for _ in range(n):
                    t += rng.expovariate(rate)
                    out.append(int(t))
                return out
            rng = random.Random(42)
            """, path=self.SCHED)
        assert findings == []

    def test_real_sched_package_is_clean(self):
        sched_dir = os.path.join(REPO_SRC, "sched")
        files = iter_python_files([sched_dir])
        assert len(files) >= 4  # loop, arrivals, admission, traffic
        assert lint_paths([sched_dir]) == []


class TestEngineAndReport:
    def test_rule_ids_unique_and_documented(self):
        ids = [cls.rule_id for cls in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 6
        for cls in ALL_RULES:
            assert cls.__doc__ and cls.rule_id in cls.__doc__

    def test_repo_source_tree_is_clean(self):
        assert lint_paths([REPO_SRC]) == []

    def test_repo_examples_are_clean(self):
        assert lint_paths([REPO_EXAMPLES]) == []

    def test_iter_python_files_sorted_and_filtered(self):
        files = iter_python_files([REPO_SRC])
        assert files == sorted(files)
        assert all(f.endswith(".py") for f in files)
        assert not any("__pycache__" in f for f in files)

    def test_json_report_shape(self):
        findings = run("import time\nx = time.time()\n")
        doc = json.loads(render_json(findings, files_scanned=1))
        assert doc["version"] == 1
        assert doc["files_scanned"] == 1
        assert doc["rules"]["RPR001"]
        assert doc["findings"][0]["rule"] == "RPR001"
        assert doc["findings"][0]["line"] == 2

    def test_finding_format(self):
        finding = run("x = time.time()")[0]
        assert finding.format().startswith("src/repro/fake.py:1:5: RPR001")
