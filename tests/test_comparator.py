"""Tests for the incremental Blob State comparator (Section III-F)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blob_state import PREFIX_LEN, BlobState
from repro.core.comparator import BlobStateComparator
from repro.sha.sha256 import Sha256

# A toy content store standing in for the buffer manager: states carry a
# key in extent_pids[0] that resolves to the content, chunked like extents.
_CONTENT: dict[int, bytes] = {}


def make_state(data: bytes) -> BlobState:
    key = len(_CONTENT)
    _CONTENT[key] = data
    hasher = Sha256(data)
    return BlobState(size=len(data), sha256=hasher.digest(),
                     sha_state=hasher.state(), prefix=data[:PREFIX_LEN],
                     extent_pids=(key,))


def read_chunks(state: BlobState, chunk: int = 64):
    data = _CONTENT[state.extent_pids[0]]
    for i in range(0, len(data), chunk):
        yield data[i:i + chunk]


@pytest.fixture
def comparator():
    return BlobStateComparator(read_chunks)


class TestEquality:
    def test_identical_content_is_equal(self, comparator):
        a = make_state(b"same content" * 10)
        b = make_state(b"same content" * 10)
        assert comparator.equal(a, b)
        assert comparator.compare(a, b) == 0
        assert comparator.stats.sha_hits == 1

    def test_different_content_not_equal(self, comparator):
        assert not comparator.equal(make_state(b"aaa"), make_state(b"bbb"))


class TestPrefixShortcut:
    def test_prefix_decides_without_blob_access(self, comparator):
        a = make_state(b"aaaa" + b"x" * 100)
        b = make_state(b"bbbb" + b"x" * 100)
        assert comparator.compare(a, b) < 0
        assert comparator.stats.prefix_hits == 1
        assert comparator.stats.deep_compares == 0

    def test_short_blob_prefix_of_short_blob(self, comparator):
        a = make_state(b"abc")
        b = make_state(b"abcdef")
        assert comparator.compare(a, b) < 0
        assert comparator.compare(b, a) > 0
        assert comparator.stats.deep_compares == 0


class TestDeepComparison:
    def test_same_prefix_differs_later(self, comparator):
        common = b"p" * PREFIX_LEN
        a = make_state(common + b"aaaa")
        b = make_state(common + b"bbbb")
        assert comparator.compare(a, b) < 0
        assert comparator.stats.deep_compares == 1

    def test_difference_beyond_first_chunk(self, comparator):
        common = b"p" * 1000
        a = make_state(common + b"1")
        b = make_state(common + b"2")
        assert comparator.compare(a, b) < 0

    def test_one_blob_is_prefix_of_other(self, comparator):
        common = b"p" * 500
        a = make_state(common)
        b = make_state(common + b"more")
        assert comparator.compare(a, b) < 0
        assert comparator.compare(b, a) > 0
        assert comparator.stats.size_tiebreaks == 2

    def test_mismatched_chunk_boundaries(self, comparator):
        """Deep compare must not assume aligned chunk sizes."""
        base = bytes(range(256)) * 4
        a = make_state(base + b"\x00")
        b = make_state(base + b"\x01")
        assert comparator.compare(a, b) < 0


class TestOrderingProperties:
    @given(st.binary(min_size=0, max_size=300),
           st.binary(min_size=0, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_matches_bytes_ordering(self, x, y):
        comparator = BlobStateComparator(read_chunks)
        result = comparator.compare(make_state(x), make_state(y))
        expected = (x > y) - (x < y)
        assert (result > 0) == (expected > 0)
        assert (result < 0) == (expected < 0)
        assert (result == 0) == (expected == 0)

    @given(st.lists(st.binary(min_size=0, max_size=120), min_size=2,
                    max_size=12, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_sorting_blob_states_sorts_content(self, blobs):
        comparator = BlobStateComparator(read_chunks)
        import functools
        states = [make_state(b) for b in blobs]
        ordered = sorted(states, key=functools.cmp_to_key(comparator.compare))
        assert [_CONTENT[s.extent_pids[0]] for s in ordered] == sorted(blobs)
