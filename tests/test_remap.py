"""Tests for the out-of-place write layer (the paper's Section VI
proposal) and its integration with the engine."""

import pytest

from repro.core.allocator import StorageFull
from repro.db import BlobDB, EngineConfig
from repro.sim.cost import CostModel
from repro.storage.device import DeviceFull, IoRequest
from repro.storage.remap import RemappedDevice

PAGE = 4096


@pytest.fixture
def device():
    return RemappedDevice(CostModel(), physical_pages=64, logical_pages=512)


class TestRemappedDevice:
    def test_write_read_roundtrip(self, device):
        payload = bytes(range(256)) * (PAGE // 256) * 3
        device.write(100, payload)
        assert device.read(100, 3) == payload

    def test_logical_space_exceeds_physical(self, device):
        assert device.capacity_pages == 512
        assert device.physical.capacity_pages == 64
        device.write(500, b"\x01" * PAGE)  # beyond physical range
        assert device.read(500, 1) == b"\x01" * PAGE

    def test_overwrite_relocates_and_reclaims(self, device):
        device.write(5, b"v1" * (PAGE // 2))
        before = device.live_pages()
        device.write(5, b"v2" * (PAGE // 2))
        assert device.read(5, 1) == b"v2" * (PAGE // 2)
        assert device.live_pages() == before  # old page self-reclaimed
        assert device.remap_stats.relocations == 1

    def test_unwritten_reads_zero(self, device):
        assert device.read(50, 1) == b"\x00" * PAGE

    def test_trim_releases_physical_pages(self, device):
        device.write(10, b"\x07" * (4 * PAGE))
        assert device.live_pages() == 4
        device.trim(10, 4)
        assert device.live_pages() == 0
        assert device.remap_stats.trimmed_pages == 4
        assert device.read(10, 1) == b"\x00" * PAGE

    def test_physical_exhaustion_by_live_data_only(self, device):
        # 64 physical pages: fill 64 live logical pages spread widely.
        for i in range(64):
            device.write(i * 7, b"\xaa" * PAGE)
        with pytest.raises(DeviceFull):
            device.write(450, b"\xbb" * PAGE)
        # Trimming makes room again.
        device.trim(0, 1)
        device.write(450, b"\xbb" * PAGE)
        assert device.read(450, 1) == b"\xbb" * PAGE

    def test_logical_out_of_range(self, device):
        with pytest.raises(DeviceFull):
            device.write(512, b"\x00" * PAGE)

    def test_submit_mixed_batch(self, device):
        device.write(0, b"A" * PAGE)
        results = device.submit([
            IoRequest(pid=0, npages=1),
            IoRequest(pid=9, npages=2, data=b"B" * (2 * PAGE)),
        ])
        assert results[0] == b"A" * PAGE
        assert results[1] is None
        assert device.peek(9, 2) == b"B" * (2 * PAGE)

    def test_write_amplification_accounting_passthrough(self, device):
        device.write(3, b"w" * PAGE, category="wal")
        assert device.stats.bytes_written_by_category["wal"] == PAGE


class TestEngineIntegration:
    def config(self, **overrides):
        defaults = dict(device_pages=8192, wal_pages=512, catalog_pages=128,
                        buffer_pool_pages=4096, out_of_place=True)
        defaults.update(overrides)
        return EngineConfig(**defaults)

    def test_blob_roundtrip_on_remapped_device(self):
        db = BlobDB(self.config())
        db.create_table("t")
        payload = bytes(range(256)) * 500
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", payload)
        assert db.read_blob("t", b"k") == payload

    def test_crash_recovery_on_remapped_device(self):
        config = self.config()
        db = BlobDB(config)
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"durable " * 5000)
        recovered = BlobDB.recover(db.crash(), config)
        assert recovered.read_blob("t", b"k") == b"durable " * 5000

    def test_delete_trims_physical_space(self):
        db = BlobDB(self.config())
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"x" * 500_000)
        live_before = db.device.live_pages()
        with db.transaction() as txn:
            db.delete_blob(txn, "t", b"k")
        assert db.device.live_pages() < live_before

    def test_aging_immunity(self):
        """The paper's motivation: after heavy small-BLOB churn, a huge
        allocation fails in-place (no large tier available) but succeeds
        out-of-place (logical extents are always fresh)."""

        def physical_full(db) -> bool:
            if hasattr(db.device, "physical_utilization"):
                return db.device.physical_utilization() > 0.85
            return False

        def churn(db):
            db.create_table("t")
            # Fill with small blobs, delete every other one: free space
            # exists but only in small tiers.
            i = 0
            try:
                while not physical_full(db):
                    with db.transaction() as txn:
                        db.put_blob(txn, "t", b"s%05d" % i, b"\x11" * 30_000)
                    i += 1
            except StorageFull:
                pass
            for j in range(0, i, 2):
                with db.transaction() as txn:
                    db.delete_blob(txn, "t", b"s%05d" % j)
            # Now ask for one BLOB larger than any remaining free tier.
            with db.transaction() as txn:
                db.put_blob(txn, "t", b"huge", b"\x22" * 3_000_000)

        in_place = BlobDB(EngineConfig(device_pages=8192, wal_pages=512,
                                       catalog_pages=128,
                                       buffer_pool_pages=4096))
        with pytest.raises(StorageFull):
            churn(in_place)

        out_of_place = BlobDB(self.config())
        churn(out_of_place)  # must succeed
        assert out_of_place.read_blob("t", b"huge") == b"\x22" * 3_000_000
