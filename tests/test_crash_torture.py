"""Crash-consistency torture tests.

A randomized operation stream (put/append/update/delete/abort) runs
against the engine and a shadow model in lockstep; the engine then
crashes at an arbitrary point and recovery must produce exactly the
shadow state of the last committed transaction — under both logging
policies, both buffer pools, and with torn-flush injection.

These tests are the strongest evidence for the paper's central
durability claim: one flush per BLOB is enough.
"""

import random

import pytest

from repro.db import BlobDB, DatabaseError, EngineConfig, KeyNotFoundError
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe
from repro.storage.faults import FaultPlan, FaultSpec, FaultyNVMe


def small_config(**overrides):
    defaults = dict(device_pages=32768, wal_pages=2048, catalog_pages=512,
                    buffer_pool_pages=8192)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class ShadowModel:
    """The expected table contents after each committed transaction."""

    def __init__(self) -> None:
        self.committed: dict[bytes, bytes] = {}
        self.pending: dict[bytes, bytes | None] = {}

    def stage(self, key: bytes, value: bytes | None) -> None:
        self.pending[key] = value

    def current(self, key: bytes) -> bytes | None:
        if key in self.pending:
            return self.pending[key]
        return self.committed.get(key)

    def commit(self) -> None:
        for key, value in self.pending.items():
            if value is None:
                self.committed.pop(key, None)
            else:
                self.committed[key] = value
        self.pending.clear()

    def abort(self) -> None:
        self.pending.clear()


def run_torture(seed: int, config: EngineConfig, n_txns: int = 30,
                torn_final_commit: bool = False) -> None:
    rng = random.Random(seed)
    db = BlobDB(config)
    db.create_table("t")
    shadow = ShadowModel()
    keys = [b"k%02d" % i for i in range(8)]

    def payload() -> bytes:
        size = rng.choice((30, 500, 5000, 60_000, 200_000))
        return bytes([rng.randrange(256)]) * size

    for txn_no in range(n_txns):
        txn = db.begin()
        will_abort = rng.random() < 0.2
        for _ in range(rng.randint(1, 4)):
            key = rng.choice(keys)
            current = shadow.current(key)
            op = rng.random()
            if current is None or op < 0.4:
                if current is not None:
                    db.delete_blob(txn, "t", key)
                    shadow.stage(key, None)
                data = payload()
                db.put_blob(txn, "t", key, data,
                            use_tail=rng.random() < 0.3)
                shadow.stage(key, data)
            elif op < 0.6:
                extra = payload()[:10_000]
                db.append_blob(txn, "t", key, extra)
                shadow.stage(key, current + extra)
            elif op < 0.8 and len(current) > 10:
                offset = rng.randrange(len(current) - 5)
                patch = b"\xee" * min(5, len(current) - offset)
                db.update_blob_range(txn, "t", key, offset, patch,
                                     scheme=rng.choice(("delta", "clone",
                                                        "auto")))
                shadow.stage(key, current[:offset] + patch
                             + current[offset + len(patch):])
            else:
                db.delete_blob(txn, "t", key)
                shadow.stage(key, None)
        is_final = txn_no == n_txns - 1
        if will_abort and not is_final:
            db.abort(txn)
            shadow.abort()
        elif torn_final_commit and is_final:
            # The torn window: WAL durable, extents never flushed.
            db.pool.flush_batch = lambda *a, **k: 0
            db.commit(txn)
            shadow.abort()   # recovery must treat the txn as failed
        else:
            db.commit(txn)
            shadow.commit()

    recovered = BlobDB.recover(db.crash(), config)
    for key in keys:
        expected = shadow.committed.get(key)
        if expected is None:
            assert not recovered.exists("t", key), key
        else:
            assert recovered.read_blob("t", key) == expected, key


@pytest.mark.parametrize("seed", range(6))
def test_torture_async_vmcache(seed):
    run_torture(seed, small_config())


@pytest.mark.parametrize("seed", range(3))
def test_torture_async_hashtable(seed):
    run_torture(100 + seed, small_config(pool="hashtable"))


@pytest.mark.parametrize("seed", range(3))
def test_torture_physlog(seed):
    run_torture(200 + seed, small_config(log_policy="physlog",
                                         wal_pages=8192))


@pytest.mark.parametrize("seed", range(3))
def test_torture_reference_hasher(seed):
    """The pure-Python resumable SHA-256 end to end (smaller payloads)."""
    rng_config = small_config(hasher="reference")
    run_torture(300 + seed, rng_config, n_txns=8)


@pytest.mark.parametrize("seed", range(4))
def test_torture_torn_final_commit(seed):
    """A torn extent flush on the last commit must be undone cleanly."""
    run_torture(400 + seed, small_config(), torn_final_commit=True)


@pytest.mark.parametrize("seed", range(3))
def test_torture_with_checkpoints(seed):
    """Aggressive checkpointing between transactions."""
    config = small_config(checkpoint_threshold=0.01)
    run_torture(500 + seed, config)


# -- fault-injection torture matrix -------------------------------------------
#
# The same crash/recover discipline, but with the device actively
# misbehaving underneath: torn writes, bit flips, and transient I/O
# errors, singly and combined, under both logging policies and both
# buffer pools.  The invariant weakens from "recovery restores the exact
# shadow state" to the substrate's detection guarantee — recovery and
# subsequent reads must NEVER surface wrong bytes silently.  Every
# successful post-recovery read must return a payload that was actually
# attempted for that key (anything an aborted transaction wrote can only
# survive recovery if its commit record became durable), and all other
# damage must surface as a typed DatabaseError or as absence.

FAULT_KINDS = {
    "torn": {"torn_write": 0.08},
    "flip": {"bit_flip": 0.08},
    "eio": {"transient_error": 0.1},
    "mixed": {"torn_write": 0.04, "bit_flip": 0.04, "transient_error": 0.08},
}

ENGINE_VARIANTS = {
    "async-vmcache": {},
    "async-hashtable": {"pool": "hashtable"},
    "physlog-vmcache": {"log_policy": "physlog", "wal_pages": 8192},
    "physlog-hashtable": {"log_policy": "physlog", "wal_pages": 8192,
                          "pool": "hashtable"},
}


def run_fault_torture(seed: int, config: EngineConfig,
                      rates: dict[str, float], n_txns: int = 12) -> None:
    model = CostModel()
    inner = SimulatedNVMe(model, capacity_pages=config.device_pages,
                          page_size=config.page_size)
    plan = FaultPlan(FaultSpec(seed=seed, **rates))
    device = FaultyNVMe(inner, plan)
    rng = random.Random(seed)
    keys = [b"f%02d" % i for i in range(6)]
    acceptable: dict[bytes, list[bytes]] = {}
    live: set[bytes] = set()

    try:
        db = BlobDB(config, device=device, model=model)
        db.create_table("t")
    except DatabaseError:
        return  # DDL already degraded to a typed error: flagged, not silent

    for _ in range(n_txns):
        key = rng.choice(keys)
        size = rng.choice((400, 5000, 30_000, 120_000))
        data = bytes([rng.randrange(256)]) * size
        try:
            if key in live and rng.random() < 0.3:
                with db.transaction() as txn:
                    db.delete_blob(txn, "t", key)
                live.discard(key)
            else:
                acceptable.setdefault(key, []).append(data)
                with db.transaction() as txn:
                    if key in live:
                        db.delete_blob(txn, "t", key)
                    db.put_blob(txn, "t", key, data)
                live.add(key)
        except DatabaseError:
            pass  # typed degradation mid-workload: the txn aborted cleanly

    try:
        recovered = BlobDB.recover(db.crash(), config, model)
    except DatabaseError:
        return  # recovery refused with a typed error: flagged, not silent

    for key in keys:
        try:
            data = recovered.read_blob("t", key)
        except KeyNotFoundError:
            continue  # rolled back to absence: a legal history point
        except DatabaseError:
            continue  # damage detected and reported: the guarantee held
        assert data in acceptable.get(key, []), \
            f"key {key!r}: recovery served bytes never written for it"


@pytest.mark.parametrize("variant", sorted(ENGINE_VARIANTS))
@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
@pytest.mark.parametrize("seed", range(2))
def test_fault_matrix(kind, variant, seed):
    config = small_config(**ENGINE_VARIANTS[variant])
    base = 1000 * (seed + 1) + 100 * sorted(FAULT_KINDS).index(kind) \
        + 10 * sorted(ENGINE_VARIANTS).index(variant)
    run_fault_torture(base, config, FAULT_KINDS[kind])
