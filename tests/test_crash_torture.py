"""Crash-consistency torture tests.

A randomized operation stream (put/append/update/delete/abort) runs
against the engine and a shadow model in lockstep; the engine then
crashes at an arbitrary point and recovery must produce exactly the
shadow state of the last committed transaction — under both logging
policies, both buffer pools, and with torn-flush injection.

These tests are the strongest evidence for the paper's central
durability claim: one flush per BLOB is enough.
"""

import random

import pytest

from repro.db import BlobDB, EngineConfig


def small_config(**overrides):
    defaults = dict(device_pages=32768, wal_pages=2048, catalog_pages=512,
                    buffer_pool_pages=8192)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class ShadowModel:
    """The expected table contents after each committed transaction."""

    def __init__(self) -> None:
        self.committed: dict[bytes, bytes] = {}
        self.pending: dict[bytes, bytes | None] = {}

    def stage(self, key: bytes, value: bytes | None) -> None:
        self.pending[key] = value

    def current(self, key: bytes) -> bytes | None:
        if key in self.pending:
            return self.pending[key]
        return self.committed.get(key)

    def commit(self) -> None:
        for key, value in self.pending.items():
            if value is None:
                self.committed.pop(key, None)
            else:
                self.committed[key] = value
        self.pending.clear()

    def abort(self) -> None:
        self.pending.clear()


def run_torture(seed: int, config: EngineConfig, n_txns: int = 30,
                torn_final_commit: bool = False) -> None:
    rng = random.Random(seed)
    db = BlobDB(config)
    db.create_table("t")
    shadow = ShadowModel()
    keys = [b"k%02d" % i for i in range(8)]

    def payload() -> bytes:
        size = rng.choice((30, 500, 5000, 60_000, 200_000))
        return bytes([rng.randrange(256)]) * size

    for txn_no in range(n_txns):
        txn = db.begin()
        will_abort = rng.random() < 0.2
        for _ in range(rng.randint(1, 4)):
            key = rng.choice(keys)
            current = shadow.current(key)
            op = rng.random()
            if current is None or op < 0.4:
                if current is not None:
                    db.delete_blob(txn, "t", key)
                    shadow.stage(key, None)
                data = payload()
                db.put_blob(txn, "t", key, data,
                            use_tail=rng.random() < 0.3)
                shadow.stage(key, data)
            elif op < 0.6:
                extra = payload()[:10_000]
                db.append_blob(txn, "t", key, extra)
                shadow.stage(key, current + extra)
            elif op < 0.8 and len(current) > 10:
                offset = rng.randrange(len(current) - 5)
                patch = b"\xee" * min(5, len(current) - offset)
                db.update_blob_range(txn, "t", key, offset, patch,
                                     scheme=rng.choice(("delta", "clone",
                                                        "auto")))
                shadow.stage(key, current[:offset] + patch
                             + current[offset + len(patch):])
            else:
                db.delete_blob(txn, "t", key)
                shadow.stage(key, None)
        is_final = txn_no == n_txns - 1
        if will_abort and not is_final:
            db.abort(txn)
            shadow.abort()
        elif torn_final_commit and is_final:
            # The torn window: WAL durable, extents never flushed.
            db.pool.flush_batch = lambda *a, **k: 0
            db.commit(txn)
            shadow.abort()   # recovery must treat the txn as failed
        else:
            db.commit(txn)
            shadow.commit()

    recovered = BlobDB.recover(db.crash(), config)
    for key in keys:
        expected = shadow.committed.get(key)
        if expected is None:
            assert not recovered.exists("t", key), key
        else:
            assert recovered.read_blob("t", key) == expected, key


@pytest.mark.parametrize("seed", range(6))
def test_torture_async_vmcache(seed):
    run_torture(seed, small_config())


@pytest.mark.parametrize("seed", range(3))
def test_torture_async_hashtable(seed):
    run_torture(100 + seed, small_config(pool="hashtable"))


@pytest.mark.parametrize("seed", range(3))
def test_torture_physlog(seed):
    run_torture(200 + seed, small_config(log_policy="physlog",
                                         wal_pages=8192))


@pytest.mark.parametrize("seed", range(3))
def test_torture_reference_hasher(seed):
    """The pure-Python resumable SHA-256 end to end (smaller payloads)."""
    rng_config = small_config(hasher="reference")
    run_torture(300 + seed, rng_config, n_txns=8)


@pytest.mark.parametrize("seed", range(4))
def test_torture_torn_final_commit(seed):
    """A torn extent flush on the last commit must be undone cleanly."""
    run_torture(400 + seed, small_config(), torn_final_commit=True)


@pytest.mark.parametrize("seed", range(3))
def test_torture_with_checkpoints(seed):
    """Aggressive checkpointing between transactions."""
    config = small_config(checkpoint_threshold=0.01)
    run_torture(500 + seed, config)
