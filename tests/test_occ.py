"""Tests for the OCC concurrency mode (Section III-H alternatives).

The paper sketches single-version concurrency control on the Blob State
relation via 2PL, OCC, or Silo.  ``concurrency="occ"`` implements the
optimistic variant: reads take no locks and record versions; commit-time
backward validation aborts transactions whose reads went stale; writers
install markers first-updater-wins (write-write conflicts abort early).
"""

import pytest

from repro.db import BlobDB, EngineConfig, TransactionConflict


def make_db(concurrency="occ"):
    db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                             catalog_pages=128, buffer_pool_pages=4096,
                             concurrency=concurrency))
    db.create_table("t")
    with db.transaction() as txn:
        db.put_blob(txn, "t", b"k", b"base content")
    return db


class TestOccReads:
    def test_readers_do_not_block_writers(self):
        """The OCC advantage over 2PL: an open reader does not stop a
        writer from committing."""
        db = make_db()
        reader = db.begin()
        assert db.read_blob("t", b"k", txn=reader) == b"base content"
        writer = db.begin()
        db.append_blob(writer, "t", b"k", b"!")   # no conflict raised
        db.commit(writer)
        # The reader is now doomed, but the writer proceeded.
        with pytest.raises(TransactionConflict):
            db.commit(reader)

    def test_2pl_blocks_the_same_interleaving(self):
        db = make_db(concurrency="2pl")
        reader = db.begin()
        db.read_blob("t", b"k", txn=reader)
        writer = db.begin()
        with pytest.raises(TransactionConflict):
            db.append_blob(writer, "t", b"k", b"!")
        db.abort(writer)
        db.commit(reader)

    def test_stale_read_fails_validation(self):
        db = make_db()
        reader = db.begin()
        db.read_blob("t", b"k", txn=reader)
        with db.transaction() as writer:
            db.append_blob(writer, "t", b"k", b"+new")
        with pytest.raises(TransactionConflict):
            db.commit(reader)
        assert db.occ_aborts == 1

    def test_no_dirty_reads_of_inflight_writes(self):
        """The engine applies writes in place, so a record under an
        active write marker is unreadable — reading it would become a
        dirty read if the writer aborts (found by the stress tests)."""
        db = make_db()
        writer = db.begin()
        db.append_blob(writer, "t", b"k", b"-uncommitted")
        reader = db.begin()
        with pytest.raises(TransactionConflict):
            db.read_blob("t", b"k", txn=reader)
        db.abort(reader)
        db.abort(writer)
        # The rolled-back bytes were never observable.
        assert db.read_blob("t", b"k") == b"base content"

    def test_unconflicted_reader_commits(self):
        db = make_db()
        reader = db.begin()
        assert db.read_blob("t", b"k", txn=reader) == b"base content"
        db.commit(reader)
        assert db.occ_aborts == 0

    def test_reader_of_other_key_unaffected(self):
        db = make_db()
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"other", b"unrelated")
        reader = db.begin()
        db.read_blob("t", b"other", txn=reader)
        with db.transaction() as writer:
            db.append_blob(writer, "t", b"k", b"+")
        db.commit(reader)  # no conflict: versions of b"other" unchanged


class TestOccWrites:
    def test_write_write_conflicts_abort_early(self):
        """First-updater-wins: the second writer aborts immediately."""
        db = make_db()
        a = db.begin()
        b = db.begin()
        db.append_blob(a, "t", b"k", b"-a")
        with pytest.raises(TransactionConflict):
            db.append_blob(b, "t", b"k", b"-b")
        db.abort(b)
        db.commit(a)
        assert db.read_blob("t", b"k") == b"base content-a"

    def test_read_own_write_validates(self):
        """A transaction that reads then writes the same key commits if
        nobody else intervened."""
        db = make_db()
        txn = db.begin()
        content = db.read_blob("t", b"k", txn=txn)
        db.append_blob(txn, "t", b"k", b"-mine")
        db.commit(txn)
        assert db.read_blob("t", b"k") == content + b"-mine"

    def test_failed_validation_rolls_back_writes(self):
        db = make_db()
        doomed = db.begin()
        db.read_blob("t", b"k", txn=doomed)
        db.put_blob(doomed, "t", b"new-key", b"should vanish")
        with db.transaction() as writer:
            db.append_blob(writer, "t", b"k", b"+")
        with pytest.raises(TransactionConflict):
            db.commit(doomed)
        assert not db.exists("t", b"new-key")

    def test_versions_bump_only_on_commit(self):
        db = make_db()
        aborted = db.begin()
        db.append_blob(aborted, "t", b"k", b"-never")
        db.abort(aborted)
        reader = db.begin()
        db.read_blob("t", b"k", txn=reader)
        db.commit(reader)  # the aborted write must not have bumped k

    def test_occ_survives_crash_recovery(self):
        db = make_db()
        with db.transaction() as txn:
            db.append_blob(txn, "t", b"k", b"-durable")
        recovered = BlobDB.recover(db.crash(), db.config)
        assert recovered.read_blob("t", b"k") == b"base content-durable"
        # And OCC still works on the recovered engine.
        reader = recovered.begin()
        recovered.read_blob("t", b"k", txn=reader)
        with recovered.transaction() as writer:
            recovered.append_blob(writer, "t", b"k", b"!")
        with pytest.raises(TransactionConflict):
            recovered.commit(reader)
