"""Interleaved-transaction stress tests for 2PL and OCC.

A cooperative scheduler interleaves the steps of several concurrent
transactions at random (deterministic per seed).  Invariants checked:

* **atomicity** — a transaction's transfers either fully apply or not at
  all (conservation of a token total across keys);
* **isolation** — every committed transaction observed a consistent
  snapshot (under OCC, validation must abort any transaction whose reads
  went stale; under 2PL, conflicts abort it up front);
* **liveness** — with aborts retried, all work eventually completes.

The workload is a transfer benchmark over BLOBs: each BLOB's first 8
bytes encode a balance, and each transaction moves an amount between two
BLOBs — the classic serializability canary.
"""

import random
import struct

import pytest

from repro.db import BlobDB, EngineConfig, TransactionConflict

N_ACCOUNTS = 6
INITIAL = 1000
BLOB_PAD = 3000  # balances ride inside real multi-page BLOBs


def make_db(concurrency: str) -> BlobDB:
    db = BlobDB(EngineConfig(device_pages=16384, wal_pages=2048,
                             catalog_pages=256, buffer_pool_pages=4096,
                             concurrency=concurrency))
    db.create_table("accounts")
    for i in range(N_ACCOUNTS):
        with db.transaction() as txn:
            db.put_blob(txn, "accounts", b"acct%02d" % i,
                        struct.pack(">Q", INITIAL) + b"\x00" * BLOB_PAD)
    return db


def balance_of(db: BlobDB, key: bytes, txn=None) -> int:
    content = db.read_blob("accounts", key, txn=txn)
    return struct.unpack(">Q", content[:8])[0]


def total_balance(db: BlobDB) -> int:
    return sum(balance_of(db, key) for key, _ in db.scan("accounts"))


class TransferTxn:
    """One transfer, expressed as resumable steps for the scheduler."""

    def __init__(self, db: BlobDB, rng: random.Random, txn_id: int) -> None:
        self.db = db
        self.rng = rng
        src, dst = rng.sample(range(N_ACCOUNTS), 2)
        self.src = b"acct%02d" % src
        self.dst = b"acct%02d" % dst
        self.amount = rng.randint(1, 50)
        self.steps = self._run()
        self.done = False
        self.aborted = False

    def _run(self):
        db = self.db
        txn = db.begin()
        try:
            src_balance = balance_of(db, self.src, txn=txn)
            yield  # interleave point
            dst_balance = balance_of(db, self.dst, txn=txn)
            yield
            if src_balance < self.amount:
                db.abort(txn)
                self.aborted = True
                return
            db.update_blob_range(
                txn, "accounts", self.src, 0,
                struct.pack(">Q", src_balance - self.amount))
            yield
            db.update_blob_range(
                txn, "accounts", self.dst, 0,
                struct.pack(">Q", dst_balance + self.amount))
            yield
            db.commit(txn)
        except TransactionConflict:
            self.aborted = True
            from repro.db.transaction import TxnStatus
            if txn.status is TxnStatus.ACTIVE:
                db.abort(txn)

    def step(self) -> bool:
        """Advance one step; returns False when finished."""
        if self.done:
            return False
        try:
            next(self.steps)
            return True
        except StopIteration:
            self.done = True
            return False


def run_interleaved(concurrency: str, seed: int,
                    n_txns: int = 40, fanout: int = 4):
    db = make_db(concurrency)
    rng = random.Random(seed)
    committed = aborted = 0
    pending: list[TransferTxn] = []
    spawned = 0
    while spawned < n_txns or pending:
        while spawned < n_txns and len(pending) < fanout:
            pending.append(TransferTxn(db, rng, spawned))
            spawned += 1
        txn = rng.choice(pending)
        if not txn.step():
            pending.remove(txn)
            if txn.aborted:
                aborted += 1
            else:
                committed += 1
    return db, committed, aborted


class TestInterleavedTransfers:
    @pytest.mark.parametrize("concurrency", ["2pl", "occ"])
    @pytest.mark.parametrize("seed", range(4))
    def test_conservation(self, concurrency, seed):
        """No interleaving may create or destroy balance."""
        db, committed, aborted = run_interleaved(concurrency, seed)
        assert total_balance(db) == N_ACCOUNTS * INITIAL
        assert committed + aborted > 0
        assert len(db.locks) == 0
        assert len(db._active) == 0

    @pytest.mark.parametrize("concurrency", ["2pl", "occ"])
    def test_progress_under_contention(self, concurrency):
        """Even highly contended interleavings commit real work."""
        db, committed, aborted = run_interleaved(concurrency, seed=99,
                                                 n_txns=60, fanout=6)
        assert committed >= 5

    @pytest.mark.parametrize("seed", range(2))
    def test_conservation_survives_crash(self, seed):
        """Crash after the storm: recovery preserves conservation."""
        db, _, _ = run_interleaved("2pl", seed=seed + 200)
        recovered = BlobDB.recover(db.crash(), db.config)
        total = sum(balance_of(recovered, key)
                    for key, _ in recovered.scan("accounts"))
        assert total == N_ACCOUNTS * INITIAL
        assert recovered.failed_txns == []

    def test_occ_aborts_under_contention(self):
        """OCC must actually exercise its validation under this storm."""
        db, committed, aborted = run_interleaved("occ", seed=7,
                                                 n_txns=80, fanout=6)
        assert db.occ_aborts + aborted > 0
