"""Tests for the S3-style object store facade."""

import hashlib

import pytest

from repro.db import BlobDB, EngineConfig
from repro.db.errors import DatabaseError, DuplicateKeyError
from repro.objectstore import (
    BucketNotFound,
    ObjectNotFound,
    ObjectStore,
    PreconditionFailed,
)


@pytest.fixture
def store():
    db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                             catalog_pages=256, buffer_pool_pages=4096))
    s = ObjectStore(db)
    s.create_bucket("photos")
    return s


class TestBuckets:
    def test_create_and_list(self, store):
        store.create_bucket("docs")
        assert store.list_buckets() == ["docs", "photos"]

    def test_duplicate_bucket(self, store):
        with pytest.raises(DuplicateKeyError):
            store.create_bucket("photos")

    def test_missing_bucket_errors(self, store):
        with pytest.raises(BucketNotFound):
            store.put_object("nope", b"k", b"v")
        with pytest.raises(BucketNotFound):
            store.head_object("nope", b"k")
        with pytest.raises(BucketNotFound):
            list(store.list_objects("nope"))


class TestObjects:
    def test_put_get_roundtrip(self, store):
        payload = b"\xff\xd8jpeg" * 1000
        info = store.put_object("photos", b"cat.jpg", payload)
        assert info.size == len(payload)
        assert store.get_object("photos", b"cat.jpg") == payload

    def test_etag_is_content_sha256(self, store):
        payload = b"etag me"
        info = store.put_object("photos", b"k", payload)
        assert info.etag == hashlib.sha256(payload).hexdigest()

    def test_put_replaces_whole_object(self, store):
        store.put_object("photos", b"k", b"version 1")
        info = store.put_object("photos", b"k", b"v2")
        assert store.get_object("photos", b"k") == b"v2"
        assert info.size == 2

    def test_head_without_content_access(self, store):
        store.put_object("photos", b"k", b"x" * 50_000)
        reads_before = store.db.device.stats.bytes_read
        info = store.head_object("photos", b"k")
        assert info.size == 50_000
        assert store.db.device.stats.bytes_read == reads_before

    def test_delete(self, store):
        store.put_object("photos", b"k", b"bye")
        store.delete_object("photos", b"k")
        with pytest.raises(ObjectNotFound):
            store.get_object("photos", b"k")
        with pytest.raises(ObjectNotFound):
            store.delete_object("photos", b"k")

    def test_conditional_get_not_modified(self, store):
        info = store.put_object("photos", b"k", b"cacheable")
        with pytest.raises(PreconditionFailed):
            store.get_object("photos", b"k", if_none_match=info.etag)
        # After modification the stale ETag no longer matches.
        store.put_object("photos", b"k", b"changed")
        assert store.get_object("photos", b"k",
                                if_none_match=info.etag) == b"changed"

    def test_list_with_prefix(self, store):
        for key in (b"2024/a.jpg", b"2024/b.jpg", b"2025/c.jpg"):
            store.put_object("photos", key, b"img")
        got = [o.key for o in store.list_objects("photos", prefix=b"2024/")]
        assert got == [b"2024/a.jpg", b"2024/b.jpg"]
        assert len(list(store.list_objects("photos"))) == 3

    def test_list_prefix_at_byte_boundary(self, store):
        store.put_object("photos", b"\xff\xfe", b"1")
        store.put_object("photos", b"\xff\xff", b"2")
        got = [o.key for o in store.list_objects("photos", prefix=b"\xff")]
        assert got == [b"\xff\xfe", b"\xff\xff"]


class TestMultipart:
    def test_multipart_assembles_in_order(self, store):
        upload = store.create_multipart_upload("photos", b"big.bin")
        parts = [b"part-one|" * 1000, b"part-two|" * 2000, b"end" * 10]
        for part in parts:
            upload.upload_part(part)
        info = upload.complete()
        expected = b"".join(parts)
        assert info.size == len(expected)
        assert info.etag == hashlib.sha256(expected).hexdigest()
        assert store.get_object("photos", b"big.bin") == expected

    def test_multipart_never_rereads_earlier_parts(self, store):
        """The resumable hash: part N costs O(N), not O(total)."""
        upload = store.create_multipart_upload("photos", b"big.bin")
        upload.upload_part(b"x" * 500_000)
        reads_before = store.db.device.stats.bytes_read
        upload.upload_part(b"y" * 1000)
        assert store.db.device.stats.bytes_read - reads_before < 100_000
        upload.complete()

    def test_multipart_replaces_existing_object(self, store):
        store.put_object("photos", b"k", b"old")
        upload = store.create_multipart_upload("photos", b"k")
        upload.upload_part(b"new content")
        upload.complete()
        assert store.get_object("photos", b"k") == b"new content"

    def test_staging_hidden_from_listing(self, store):
        upload = store.create_multipart_upload("photos", b"wip")
        upload.upload_part(b"partial")
        assert list(store.list_objects("photos")) == []
        upload.complete()
        assert [o.key for o in store.list_objects("photos")] == [b"wip"]

    def test_abort_discards_parts(self, store):
        upload = store.create_multipart_upload("photos", b"never")
        upload.upload_part(b"discard me")
        upload.abort()
        with pytest.raises(ObjectNotFound):
            store.head_object("photos", b"never")
        with pytest.raises(DatabaseError):
            upload.upload_part(b"too late")

    def test_empty_complete_rejected(self, store):
        upload = store.create_multipart_upload("photos", b"empty")
        with pytest.raises(DatabaseError):
            upload.complete()

    def test_completed_object_survives_crash(self, store):
        upload = store.create_multipart_upload("photos", b"durable.bin")
        upload.upload_part(b"p1" * 10_000)
        upload.upload_part(b"p2" * 10_000)
        upload.complete()
        db = store.db
        recovered = BlobDB.recover(db.crash(), db.config)
        assert recovered.read_blob("photos", b"durable.bin") == \
            b"p1" * 10_000 + b"p2" * 10_000
