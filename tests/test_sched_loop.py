"""Tests for the discrete-event loop and SimWorker protocol."""

import pytest

from repro.sched.loop import Delay, EventLoop, Io, JobQueue, Resource, Take


class TestEventOrdering:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.call_at(300, lambda: fired.append("c"))
        loop.call_at(100, lambda: fired.append("a"))
        loop.call_at(200, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.now_ns == 300

    def test_simultaneous_events_fire_in_schedule_order(self):
        """Tie-break by sequence number: scheduling order, not heap luck."""
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.call_at(500, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_cannot_schedule_into_the_past(self):
        loop = EventLoop()
        loop.call_at(100, lambda: loop.call_at(50, lambda: None))
        with pytest.raises(ValueError, match="past"):
            loop.run()

    def test_run_until_leaves_later_events_queued(self):
        loop = EventLoop()
        fired = []
        loop.call_at(100, lambda: fired.append(1))
        loop.call_at(200, lambda: fired.append(2))
        loop.run(until_ns=150)
        assert fired == [1]
        loop.run()
        assert fired == [1, 2]

    def test_event_budget_bounds_runaway(self):
        loop = EventLoop()

        def again():
            loop.call_at(loop.now_ns + 1, again)

        loop.call_at(0, again)
        with pytest.raises(RuntimeError, match="budget"):
            loop.run(max_events=100)


class TestWorkerCommands:
    def test_delay_resumes_at_the_right_time(self):
        loop = EventLoop()
        seen = []

        def worker():
            yield Delay(250)
            seen.append(loop.now_ns)
            yield Delay(750)
            seen.append(loop.now_ns)

        loop.spawn(worker())
        loop.run()
        assert seen == [250, 1000]

    def test_io_serializes_on_the_resource(self):
        """Two workers hitting one device queue FIFO behind each other."""
        loop = EventLoop()
        device = Resource("dev")
        done = []

        def worker(tag):
            yield Io(device, 1000)
            done.append((tag, loop.now_ns))

        loop.spawn(worker("a"))
        loop.spawn(worker("b"))
        loop.run()
        assert done == [("a", 1000), ("b", 2000)]
        assert device.served == 2
        assert device.busy_ns == 2000
        assert device.waited_ns == 1000  # b waited behind a

    def test_io_on_idle_resource_has_no_wait(self):
        loop = EventLoop()
        r1, r2 = Resource("d1"), Resource("d2")
        done = []

        def worker(res, tag):
            yield Io(res, 500)
            done.append((tag, loop.now_ns))

        loop.spawn(worker(r1, "a"))
        loop.spawn(worker(r2, "b"))
        loop.run()
        assert done == [("a", 500), ("b", 500)]
        assert r1.waited_ns == r2.waited_ns == 0

    def test_take_blocks_until_put(self):
        loop = EventLoop()
        queue = JobQueue()
        got = []

        def worker():
            item = yield Take(queue)
            got.append((item, loop.now_ns))

        w = worker()
        loop.spawn(w)
        loop.call_at(400, lambda: loop.put(queue, "job"))
        loop.run()
        assert got == [("job", 400)]

    def test_take_drains_buffered_items_fifo(self):
        loop = EventLoop()
        queue = JobQueue()
        got = []

        def worker():
            while True:
                item = yield Take(queue)
                got.append(item)

        loop.put(queue, 1)
        loop.put(queue, 2)
        w = worker()
        loop.spawn(w)
        loop.run()
        assert got == [1, 2]
        loop.drain_workers([w])

    def test_idle_workers_wake_fifo(self):
        """Longest-idle worker gets the next job (no set-order luck)."""
        loop = EventLoop()
        queue = JobQueue()
        served = []

        def worker(tag):
            while True:
                item = yield Take(queue)
                served.append((tag, item))

        workers = [worker("w0"), worker("w1")]
        for w in workers:
            loop.spawn(w)
        loop.call_at(10, lambda: loop.put(queue, "x"))
        loop.call_at(20, lambda: loop.put(queue, "y"))
        loop.run()
        assert served == [("w0", "x"), ("w1", "y")]
        loop.drain_workers(workers)

    def test_unknown_yield_raises(self):
        loop = EventLoop()

        def worker():
            yield "nonsense"

        loop.spawn(worker())
        with pytest.raises(TypeError, match="expected"):
            loop.run()

    def test_negative_delay_and_demand_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)
        with pytest.raises(ValueError):
            Io(Resource("d"), -5)


class TestResourceAccounting:
    def test_depth_at_measures_backlog(self):
        res = Resource("dev")
        res.admit(0, 1000)
        res.admit(0, 1000)
        assert res.depth_at(0) == 2000
        assert res.depth_at(1500) == 500
        assert res.depth_at(5000) == 0

    def test_determinism_two_identical_runs(self):
        def drive():
            loop = EventLoop()
            res = Resource("dev")
            queue = JobQueue()
            log = []

            def worker(tag):
                while True:
                    item = yield Take(queue)
                    yield Io(res, 100 * (item + 1))
                    yield Delay(37)
                    log.append((tag, item, loop.now_ns))

            workers = [worker(i) for i in range(3)]
            for w in workers:
                loop.spawn(w)
            for i in range(9):
                loop.call_at(50 * i, lambda i=i: loop.put(queue, i))
            loop.run()
            loop.drain_workers(workers)
            return log

        assert drive() == drive()
