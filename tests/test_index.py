"""Tests for the Blob State / prefix / semantic indexes (Section III-F)."""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.db.index import BlobStateIndex, PrefixIndex, SemanticIndex, make_probe


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


@pytest.fixture
def db():
    database = BlobDB(small_config())
    database.create_table("doc")
    return database


def load(db, docs: dict[bytes, bytes]):
    for key, data in docs.items():
        with db.transaction() as txn:
            db.put_blob(txn, "doc", key, data)


class TestBlobStateIndex:
    def test_build_and_point_lookup(self, db):
        docs = {b"a": b"alpha content", b"b": b"beta content",
                b"c": b"gamma content"}
        load(db, docs)
        index = BlobStateIndex(db, "doc")
        assert index.build() == 3
        assert index.lookup_content(b"beta content") == [b"b"]
        assert index.lookup_content(b"not there") == []

    def test_point_lookup_uses_digest_not_content(self, db):
        load(db, {b"a": b"x" * 100_000})
        index = BlobStateIndex(db, "doc")
        index.build()
        index.comparator.stats.deep_compares = 0
        assert index.lookup_content(b"x" * 100_000) == [b"a"]
        assert index.comparator.stats.deep_compares == 0  # SHA fast path

    def test_duplicate_content_maps_to_all_keys(self, db):
        load(db, {b"a": b"same", b"b": b"same"})
        index = BlobStateIndex(db, "doc")
        index.build()
        assert sorted(index.lookup_content(b"same")) == [b"a", b"b"]
        assert len(index) == 1  # one content entry

    def test_range_query(self, db):
        docs = {b"1": b"apple", b"2": b"banana", b"3": b"cherry",
                b"4": b"durian"}
        load(db, docs)
        index = BlobStateIndex(db, "doc")
        index.build()
        assert sorted(index.range_content(b"banana", b"durian")) == \
            [b"2", b"3"]

    def test_range_with_shared_prefixes_dereferences_blobs(self, db):
        """Documents identical for > 32 bytes force incremental compares."""
        common = b"p" * 100
        docs = {b"a": common + b"aaa", b"b": common + b"bbb",
                b"c": common + b"ccc"}
        load(db, docs)
        index = BlobStateIndex(db, "doc")
        index.build()
        assert index.comparator.stats.deep_compares > 0
        assert sorted(index.range_content(common + b"aaa",
                                          common + b"ccc")) == [b"a", b"b"]

    def test_remove(self, db):
        load(db, {b"a": b"removable"})
        index = BlobStateIndex(db, "doc")
        index.build()
        state = db.get_state("doc", b"a")
        index.remove(state, b"a")
        assert index.lookup_content(b"removable") == []
        assert len(index) == 0

    def test_remove_one_of_duplicates(self, db):
        load(db, {b"a": b"dup", b"b": b"dup"})
        index = BlobStateIndex(db, "doc")
        index.build()
        index.remove(db.get_state("doc", b"a"), b"a")
        assert index.lookup_content(b"dup") == [b"b"]

    def test_full_content_indexable_regardless_of_size(self, db):
        """No prefix limit: two 60 KB docs differing at the end both index."""
        base = b"z" * 60_000
        load(db, {b"a": base + b"1", b"b": base + b"2"})
        index = BlobStateIndex(db, "doc")
        index.build()
        assert index.lookup_content(base + b"1") == [b"a"]
        assert index.lookup_content(base + b"2") == [b"b"]

    def test_index_stores_no_content(self, db):
        """Index size stays metadata-sized: no BLOB copies (Table I)."""
        load(db, {bytes([i]): bytes([i]) * 50_000 for i in range(8)})
        index = BlobStateIndex(db, "doc")
        index.build()
        stats = index.stats()
        assert stats.size_bytes < 8 * 50_000 / 10

    def test_probe_state_shape(self):
        probe = make_probe(b"hello world")
        assert probe.size == 11
        assert probe.prefix == b"hello world"
        assert probe.data == b"hello world"


class TestPrefixIndex:
    def test_collisions_become_misses(self, db):
        """Documents sharing the 1 K prefix: only one is indexable."""
        common = b"c" * 1024
        load(db, {b"a": common + b"tail-a", b"b": common + b"tail-b",
                  b"c": b"unique document"})
        index = PrefixIndex(db, "doc", prefix_bytes=1024)
        index.build()
        assert len(index.missed) == 1
        assert index.miss_fraction == pytest.approx(1 / 3)

    def test_lookup_can_return_wrong_document(self, db):
        common = b"c" * 1024
        load(db, {b"a": common + b"tail-a", b"b": common + b"tail-b"})
        index = PrefixIndex(db, "doc", prefix_bytes=1024)
        index.build()
        # Both queries hit the same slot: one of them gets key "a" even
        # though the content differs past the prefix.
        assert index.lookup_content(common + b"tail-b") == b"a"

    def test_no_misses_for_distinct_prefixes(self, db):
        load(db, {bytes([i]): bytes([i]) * 2000 for i in range(10)})
        index = PrefixIndex(db, "doc", prefix_bytes=1024)
        index.build()
        assert index.miss_fraction == 0.0

    def test_prefix_index_stores_content_copies(self, db):
        """The baseline's cost: 1 KB of content per entry in the tree."""
        load(db, {bytes([i]): bytes([i]) * 5000 for i in range(10)})
        prefix_index = PrefixIndex(db, "doc", prefix_bytes=1024)
        prefix_index.build()
        state_index = BlobStateIndex(db, "doc")
        state_index.build()
        assert prefix_index.stats().leaf_key_bytes > \
            state_index.stats().leaf_key_bytes * 2


class TestSemanticIndex:
    def test_udf_classification(self, db):
        def classify(content: bytes) -> str:
            return "cat" if content.startswith(b"\xff\xd8cat") else "other"

        load(db, {b"1.jpg": b"\xff\xd8cat...", b"2.jpg": b"\xff\xd8dog...",
                  b"3.jpg": b"\xff\xd8cat!!!"})
        index = SemanticIndex(db, "doc", classify)
        index.build()
        assert sorted(index.lookup("cat")) == [b"1.jpg", b"3.jpg"]
        assert index.lookup("other") == [b"2.jpg"]
        assert index.lookup("bird") == []

    def test_bytes_udf(self, db):
        load(db, {b"a": b"12345", b"b": b"123"})
        index = SemanticIndex(db, "doc", lambda c: len(c).to_bytes(4, "big"))
        index.build()
        assert index.lookup((5).to_bytes(4, "big")) == [b"a"]

    def test_incremental_insert(self, db):
        index = SemanticIndex(db, "doc", lambda c: c[:1])
        with db.transaction() as txn:
            state = db.put_blob(txn, "doc", b"k", b"hello")
        index.insert(state, b"k")
        assert index.lookup(b"h") == [b"k"]
        assert len(index) == 1
