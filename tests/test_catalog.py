"""Tests for the checkpoint catalog and superblock encoding."""

import pytest

from repro.core.blob_state import BlobState
from repro.db.catalog import (
    CatalogSnapshot,
    Superblock,
    decode_value,
    encode_value,
)
from repro.sha.sha256 import Sha256


def make_state(data: bytes) -> BlobState:
    hasher = Sha256(data)
    return BlobState(size=len(data), sha256=hasher.digest(),
                     sha_state=hasher.state(), prefix=data[:32],
                     extent_pids=(7, 9))


class TestValueEncoding:
    def test_bytes_roundtrip(self):
        assert decode_value(encode_value(b"plain")) == b"plain"

    def test_blob_state_roundtrip(self):
        state = make_state(b"blobby content")
        assert decode_value(encode_value(state)) == state

    def test_bytearray_accepted(self):
        assert decode_value(encode_value(bytearray(b"ba"))) == b"ba"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(42)

    def test_bad_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_value(b"\x99whatever")
        with pytest.raises(ValueError):
            decode_value(b"")


class TestCatalogSnapshot:
    def test_roundtrip(self):
        snap = CatalogSnapshot(
            checkpoint_id=3, next_txn_id=42, allocator_next_pid=1000,
            free_extents={0: [5, 9], 2: [100]},
            free_tails={3: [77]},
            tables={"image": [(b"cat", encode_value(b"v1"))],
                    "docs": [(b"a", encode_value(make_state(b"doc")))]},
        )
        restored = CatalogSnapshot.deserialize(snap.serialize())
        assert restored == snap

    def test_empty_snapshot(self):
        snap = CatalogSnapshot(checkpoint_id=0, next_txn_id=1,
                               allocator_next_pid=0)
        assert CatalogSnapshot.deserialize(snap.serialize()) == snap

    def test_corruption_detected(self):
        raw = bytearray(CatalogSnapshot(
            checkpoint_id=1, next_txn_id=1,
            allocator_next_pid=0).serialize())
        raw[10] ^= 0xFF
        with pytest.raises(ValueError):
            CatalogSnapshot.deserialize(bytes(raw))

    def test_not_a_snapshot(self):
        with pytest.raises(ValueError):
            CatalogSnapshot.deserialize(b"garbage")


class TestSuperblock:
    def test_roundtrip(self):
        sb = Superblock(active_slot=1, catalog_len=12345, checkpoint_id=7)
        raw = sb.serialize(4096)
        assert len(raw) == 4096
        assert Superblock.deserialize(raw) == sb

    def test_fresh_marker(self):
        sb = Superblock(active_slot=-1)
        assert Superblock.deserialize(sb.serialize(4096)).active_slot == -1

    def test_corruption_detected(self):
        raw = bytearray(Superblock(active_slot=0).serialize(4096))
        raw[3] ^= 0x01
        with pytest.raises(ValueError):
            Superblock.deserialize(bytes(raw))

    def test_wrong_magic(self):
        import struct, zlib
        body = struct.pack(">8sbQQ", b"NOTADB!!", 0, 0, 0)
        raw = body + struct.pack(">I", zlib.crc32(body))
        with pytest.raises(ValueError):
            Superblock.deserialize(raw.ljust(4096, b"\x00"))
