"""Tests for the extent-tier formula and its baselines (Section III-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tier import ExtentTier, FibonacciTier, PowerOfTwoTier


class TestExtentTierFormula:
    def test_paper_level0_sizes(self):
        """Level 0 with 10 tiers/level is 1, 2, 4, ..., 512 (paper table)."""
        tier = ExtentTier(tiers_per_level=10)
        assert [tier.size(i) for i in range(10)] == \
            [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]

    def test_paper_level1_sizes(self):
        """Level 1 is 1k, 1.5k, 2.3k, ..., 39.4k (paper table)."""
        tier = ExtentTier(tiers_per_level=10)
        sizes = [tier.size(10 + i) for i in range(10)]
        assert sizes == [1024, 1536, 2304, 3456, 5184, 7776,
                         11664, 17496, 26244, 39366]
        # The paper rounds with k=1000: 1k 1.5k 2.3k 3.5k 5.2k 7.8k ...
        rounded = [round(s / 1000, 1) for s in sizes]
        assert rounded == [1.0, 1.5, 2.3, 3.5, 5.2, 7.8, 11.7, 17.5, 26.2, 39.4]

    def test_127_extents_reach_petabytes(self):
        """With 4 KB pages and 127 extents the sequence exceeds 10 PB."""
        tier = ExtentTier(tiers_per_level=10, max_levels=13)
        total_bytes = tier.max_pages(127) * 4096
        assert total_bytes > 10 * (1 << 50)  # > 10 PiB

    def test_sizes_monotonically_nondecreasing(self):
        tier = ExtentTier(tiers_per_level=8)
        sizes = [tier.size(i) for i in range(100)]
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_tiers_cap_at_max_levels(self):
        tier = ExtentTier(tiers_per_level=5, max_levels=2)
        largest = tier.size(9)
        assert tier.size(10) == largest
        assert tier.size(500) == largest

    def test_level_boundary_is_continuous(self):
        """The first tier of level L+1 is not smaller than the last of L."""
        tier = ExtentTier(tiers_per_level=10)
        assert tier.size(10) >= tier.size(9)
        assert tier.size(20) >= tier.size(19)

    def test_paper_waste_example_20mb(self):
        """Five tiers/level: waste for a 20 MB BLOB is about 25 %."""
        tier = ExtentTier(tiers_per_level=5)
        npages = 20 * 1024 * 1024 // 4096
        assert tier.waste_fraction(npages) == pytest.approx(0.25, abs=0.08)

    def test_waste_decreases_for_larger_blobs(self):
        """Paper: 25 % at 20 MB dropping toward 7.3 % at 51 GB.

        Point waste depends on where a size lands between tier
        boundaries, so we assert the trend and the paper's upper bound.
        """
        tier = ExtentTier(tiers_per_level=5)
        small = tier.waste_fraction(20 * 1024 * 1024 // 4096)
        large = tier.waste_fraction(51 * 1024 * 1024 * 1024 // 4096)
        assert large < small
        assert large < 0.073 + 0.01

    def test_30_tiers_per_level_supports_4tb_in_first_level(self):
        """Paper: with 30 tiers/level the first level supports 4 TB BLOBs."""
        tier = ExtentTier(tiers_per_level=30)
        first_level_bytes = tier.cumulative(30) * 4096
        assert first_level_bytes >= 4 * 10**12  # 4 TB (decimal, as the paper)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ExtentTier(tiers_per_level=0)
        with pytest.raises(ValueError):
            ExtentTier(max_levels=0)

    def test_negative_tier_rejected(self):
        with pytest.raises(ValueError):
            ExtentTier().size(-1)


class TestBaselineTiers:
    def test_power_of_two_sizes(self):
        tier = PowerOfTwoTier()
        assert [tier.size(i) for i in range(6)] == [1, 2, 4, 8, 16, 32]

    def test_fibonacci_sizes(self):
        tier = FibonacciTier()
        assert [tier.size(i) for i in range(8)] == [1, 2, 3, 5, 8, 13, 21, 34]

    def test_fibonacci_random_access(self):
        tier = FibonacciTier()
        assert tier.size(10) == 144  # cache fills on demand

    def test_power_of_two_worst_case_waste_near_50_percent(self):
        tier = PowerOfTwoTier()
        # One page past a capacity boundary is the worst case.
        waste = tier.waste_fraction(tier.cumulative(12) + 1)
        assert waste == pytest.approx(0.5, abs=0.02)

    def test_proposed_tier_wastes_less_than_baselines_at_scale(self):
        """The paper's motivation: the new formula beats both classics."""
        ours = ExtentTier(tiers_per_level=5)
        pow2 = PowerOfTwoTier()
        fib = FibonacciTier()
        npages = 51 * 1024 * 1024 * 1024 // 4096
        # Worst-case (capacity+1) waste comparison at the same scale.
        assert ours.waste_fraction(npages) < 0.15
        assert pow2.waste_fraction(pow2.cumulative(20) + 1) > 0.45
        assert fib.waste_fraction(fib.cumulative(30) + 1) > 0.30


class TestTierTableHelpers:
    def test_cumulative(self):
        tier = PowerOfTwoTier()
        assert tier.cumulative(4) == 15

    def test_tiers_for_pages_exact_fit(self):
        tier = PowerOfTwoTier()
        assert tier.tiers_for_pages(15) == 4
        assert tier.tiers_for_pages(16) == 5

    def test_tiers_for_pages_one_page(self):
        assert ExtentTier().tiers_for_pages(1) == 1

    def test_tiers_for_pages_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ExtentTier().tiers_for_pages(0)

    @given(st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=80, deadline=None)
    def test_capacity_always_covers_request(self, npages):
        tier = ExtentTier(tiers_per_level=7)
        k = tier.tiers_for_pages(npages)
        assert tier.cumulative(k) >= npages
        if k > 1:
            assert tier.cumulative(k - 1) < npages
