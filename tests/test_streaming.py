"""Tests for the streaming BLOB write API."""

import hashlib

import pytest

from repro.db import BlobDB, EngineConfig


@pytest.fixture
def db():
    database = BlobDB(EngineConfig(device_pages=32768, wal_pages=1024,
                                   catalog_pages=256,
                                   buffer_pool_pages=8192))
    database.create_table("t")
    return database


class TestPutBlobStream:
    def test_stream_equals_oneshot(self, db):
        chunks = [b"a" * 10_000, b"b" * 50_000, b"c" * 3]
        with db.transaction() as txn:
            state = db.put_blob_stream(txn, "t", b"k", iter(chunks))
        joined = b"".join(chunks)
        assert db.read_blob("t", b"k") == joined
        assert state.sha256 == hashlib.sha256(joined).digest()

    def test_generator_input(self, db):
        def generate():
            for i in range(50):
                yield bytes([i]) * 4096

        with db.transaction() as txn:
            db.put_blob_stream(txn, "t", b"g", generate())
        content = db.read_blob("t", b"g")
        assert len(content) == 50 * 4096
        assert content[:4096] == b"\x00" * 4096
        assert content[-4096:] == bytes([49]) * 4096

    def test_empty_iterable_creates_empty_blob(self, db):
        with db.transaction() as txn:
            state = db.put_blob_stream(txn, "t", b"e", [])
        assert state.size == 0
        assert db.read_blob("t", b"e") == b""

    def test_empty_chunks_skipped(self, db):
        with db.transaction() as txn:
            db.put_blob_stream(txn, "t", b"k", [b"x", b"", b"y"])
        assert db.read_blob("t", b"k") == b"xy"

    def test_atomic_under_abort(self, db):
        txn = db.begin()
        db.put_blob_stream(txn, "t", b"k", [b"1" * 1000, b"2" * 1000])
        db.abort(txn)
        assert not db.exists("t", b"k")

    def test_stream_survives_crash(self, db):
        with db.transaction() as txn:
            db.put_blob_stream(txn, "t", b"k",
                               (bytes([i]) * 20_000 for i in range(8)))
        recovered = BlobDB.recover(db.crash(), db.config)
        content = recovered.read_blob("t", b"k")
        assert len(content) == 8 * 20_000
        assert content[-1] == 7

    def test_streaming_never_rereads(self, db):
        """Each chunk's append must not re-read earlier chunks."""
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"warm", b"w" * 4096)  # warm the pool
        before = db.device.stats.bytes_read
        with db.transaction() as txn:
            db.put_blob_stream(txn, "t", b"k",
                               (b"\x55" * 100_000 for _ in range(10)))
        assert db.device.stats.bytes_read - before < 100_000
