"""Integration: the engine running on ART-backed relations (III-F)."""

import pytest

from repro.db import BlobDB, EngineConfig


def art_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=256,
                    buffer_pool_pages=4096, index_structure="art")
    defaults.update(overrides)
    return EngineConfig(**defaults)


@pytest.fixture
def db():
    database = BlobDB(art_config())
    database.create_table("image")
    return database


class TestArtBackedEngine:
    def test_blob_roundtrip(self, db):
        payload = bytes(range(256)) * 200
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"cat.jpg", payload)
        assert db.read_blob("image", b"cat.jpg") == payload

    def test_scan_order(self, db):
        with db.transaction() as txn:
            for name in (b"c.png", b"a.png", b"b.png"):
                db.put_blob(txn, "image", name, b"x" + name)
        assert [k for k, _ in db.scan("image")] == \
            [b"a.png", b"b.png", b"c.png"]

    def test_delete_and_reuse(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"gone" * 5000)
        with db.transaction() as txn:
            db.delete_blob(txn, "image", b"k")
        assert not db.exists("image", b"k")
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k2", b"new" * 5000)
        assert db.read_blob("image", b"k2") == b"new" * 5000

    def test_grow_and_update(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"g", b"base|")
        with db.transaction() as txn:
            db.append_blob(txn, "image", b"g", b"grown")
        with db.transaction() as txn:
            db.update_blob_range(txn, "image", b"g", 0, b"BASE|")
        assert db.read_blob("image", b"g") == b"BASE|grown"

    def test_crash_recovery_on_art(self, db):
        payload = b"durable" * 3000
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", payload)
        db.checkpoint()
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"post", b"tail txn")
        recovered = BlobDB.recover(db.crash(), db.config)
        assert recovered.config.index_structure == "art"
        assert recovered.read_blob("image", b"k") == payload
        assert recovered.read_blob("image", b"post") == b"tail txn"

    def test_fuse_over_art(self, db):
        from repro.fuse import FuseMount
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"f.bin", b"\x01\x02\x03")
        mount = FuseMount(db)
        assert mount.read_bytes("/image/f.bin") == b"\x01\x02\x03"
        assert "f.bin" in mount.listdir("/image")

    def test_locking_unaffected(self, db):
        from repro.db.errors import TransactionConflict
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"v")
        a = db.begin()
        db.append_blob(a, "image", b"k", b"1")
        b = db.begin()
        with pytest.raises(TransactionConflict):
            db.append_blob(b, "image", b"k", b"2")
        db.abort(b)
        db.commit(a)
