"""Tests for token-bucket admission control and its edge cases."""

import math

import pytest

from repro.sched.admission import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_tokens_s=2.0, burst=3.0)
        assert all(bucket.try_take(0) for _ in range(3))
        assert not bucket.try_take(0)
        # Half a second accrues one token at 2 tokens/s.
        assert bucket.try_take(500_000_000)
        assert not bucket.try_take(500_000_000)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate_tokens_s=1000.0, burst=2.0)
        bucket.try_take(0)
        # An hour of idle accrual still caps at burst.
        bucket._refill(3_600_000_000_000)
        assert bucket.tokens == 2.0

    def test_next_grant_time(self):
        bucket = TokenBucket(rate_tokens_s=1.0, burst=1.0)
        assert bucket.try_take(0)
        assert bucket.next_grant_ns(0) == pytest.approx(1e9)

    def test_zero_rate_bucket_never_grants(self):
        bucket = TokenBucket(rate_tokens_s=0.0, burst=0.0)
        assert not bucket.try_take(0)
        assert math.isinf(bucket.next_grant_ns(10**12))

    def test_reservations_do_not_double_spend(self):
        """Two queued ops must reserve *different* future tokens.

        Regression: computing grants from ``now`` instead of the refill
        frontier let a later op claim a token the earlier reservation
        had already consumed.
        """
        bucket = TokenBucket(rate_tokens_s=1.0, burst=1.0)
        assert bucket.try_take(0)  # drain the burst
        g1 = bucket.next_grant_ns(100_000_000)
        bucket.take_at(int(math.ceil(g1)))
        g2 = bucket.next_grant_ns(200_000_000)
        assert g2 >= g1 + 1e9 * 0.999  # a full token's accrual later

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_tokens_s=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_tokens_s=1.0, burst=-1.0)


class TestAdmissionEdgeCases:
    def test_zero_quota_tenant_sheds_everything(self):
        """A zero-rate, zero-burst quota admits nothing — under *both*
        policies: the queue policy must shed too (there is no future
        token to wait for), not hold jobs forever."""
        for policy in ("shed", "queue"):
            ctl = AdmissionController(policy=policy, rate_tokens_s=0.0,
                                      burst=0.0)
            outcomes = [ctl.decide(7, t * 1000)[0] for t in range(20)]
            assert outcomes == [SHED] * 20, policy
            assert ctl.stats.shed == {7: 20}
            assert ctl.stats.admitted == {}

    def test_burst_exactly_at_bucket_capacity(self):
        """A simultaneous burst of exactly ``burst`` ops is admitted in
        full with no waiting; the next op is the first casualty."""
        ctl = AdmissionController(policy="shed", rate_tokens_s=10.0,
                                  burst=8.0)
        outcomes = [ctl.decide(0, 0) for _ in range(8)]
        assert all(o == (ADMIT, 0) for o in outcomes)
        assert ctl.decide(0, 0)[0] == SHED
        assert ctl.stats.admitted == {0: 8}
        assert ctl.stats.shed == {0: 1}

    def test_burst_at_capacity_queue_policy_delays_overflow(self):
        ctl = AdmissionController(policy="queue", rate_tokens_s=10.0,
                                  burst=8.0)
        for _ in range(8):
            assert ctl.decide(0, 0) == (ADMIT, 0)
        decision, dispatch_ns = ctl.decide(0, 0)
        assert decision == QUEUE
        assert dispatch_ns == pytest.approx(1e8, rel=0.01)  # 1 token @ 10/s
        assert ctl.stats.queued == {0: 1}
        assert ctl.stats.queued_wait_ns == pytest.approx(1e8, rel=0.01)

    def test_shed_vs_queue_same_admission_sequence_when_under_quota(self):
        """Below quota the policies are indistinguishable."""
        arrivals = [i * 200_000_000 for i in range(10)]  # 5 ops/s offered
        seq = {}
        for policy in ("shed", "queue"):
            ctl = AdmissionController(policy=policy, rate_tokens_s=10.0,
                                      burst=2.0)
            seq[policy] = [ctl.decide(0, t) for t in arrivals]
        assert seq["shed"] == seq["queue"]
        assert all(d == ADMIT for d, _ in seq["shed"])

    def test_queued_dispatches_respect_arrival_order(self):
        """Grant times of one tenant's queued ops strictly increase."""
        ctl = AdmissionController(policy="queue", rate_tokens_s=5.0,
                                  burst=1.0)
        grants = []
        for t in range(6):
            decision, dispatch_ns = ctl.decide(0, t * 1000)
            if decision == QUEUE:
                grants.append(dispatch_ns)
        assert grants == sorted(grants)
        assert len(set(grants)) == len(grants)
        # Each successive grant is one token's accrual (200 ms) later.
        for a, b in zip(grants, grants[1:]):
            assert b - a == pytest.approx(2e8, rel=0.01)

    def test_per_tenant_isolation(self):
        """One tenant's storm cannot drain another tenant's bucket."""
        ctl = AdmissionController(policy="shed", rate_tokens_s=1.0,
                                  burst=2.0)
        for _ in range(10):
            ctl.decide(0, 0)
        assert ctl.decide(1, 0)[0] == ADMIT
        assert ctl.stats.shed.get(1, 0) == 0

    def test_explicit_quota_overrides_default(self):
        ctl = AdmissionController(
            policy="shed", rate_tokens_s=100.0, burst=10.0,
            quotas={3: TokenBucket(0.0, 0.0)})
        assert ctl.decide(0, 0)[0] == ADMIT
        assert ctl.decide(3, 0)[0] == SHED

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(policy="drop")
