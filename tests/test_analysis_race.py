"""Tests for the happens-before race detector, the concurrency lint
rules (RPR007/RPR008), and the schedule-space explorer."""

import os
import textwrap

import pytest

from repro.analysis.explorer import (
    ScheduleExplorer,
    _planted_race_schedule,
    quantize_arrivals,
)
from repro.analysis.lint import Finding, lint_source
from repro.analysis.race import (
    RaceDetector,
    RaceViolation,
    attach_race_detector,
    clock_leq,
)
from repro.sched.arrivals import generate_jobs
from repro.sched.loop import (
    Acquire,
    Delay,
    EventLoop,
    Io,
    JobQueue,
    Release,
    Resource,
    Take,
)
from tests.fixtures import racy_worker

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "fixtures",
                            "racy_worker.py")


def run_lint(source: str, path: str = "src/repro/fake.py") -> list[Finding]:
    return lint_source(path, textwrap.dedent(source))


def rules_of(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


class TestClockPrimitives:
    def test_leq_reflexive_and_ordered(self):
        a = {"t0": 1}
        b = {"t0": 2, "t1": 1}
        assert clock_leq(a, a)
        assert clock_leq(a, b)
        assert not clock_leq(b, a)

    def test_concurrent_clocks_incomparable(self):
        a = {"t0": 2, "t1": 1}
        b = {"t0": 1, "t1": 2}
        assert not clock_leq(a, b)
        assert not clock_leq(b, a)


class TestDetectorEdges:
    """Each HB edge of the catalogue suppresses a would-be race."""

    def _two_workers(self, body_a, body_b, mode="collect"):
        loop = EventLoop()
        detector = attach_race_detector(loop, mode=mode)
        loop.spawn(body_a(detector))
        loop.spawn(body_b(detector))
        loop.run()
        return detector

    def test_unordered_writes_race(self):
        def writer(det):
            yield Delay(10)
            det.on_write(("shared",))

        det = self._two_workers(writer, writer)
        assert det.stats.races == 1
        report = det.races[0]
        assert report.kind == "write/write"
        assert report.location == ("shared",)
        assert report.at_ns == 10

    def test_unordered_read_write_race(self):
        def reader(det):
            yield Delay(10)
            det.on_read(("shared",))

        def writer(det):
            yield Delay(10)
            det.on_write(("shared",))

        det = self._two_workers(reader, writer)
        assert det.stats.races == 1
        assert det.races[0].kind == "read/write"

    def test_lock_transfer_edge_orders_writers(self):
        lock = Resource("lock")

        def writer(det):
            yield Delay(10)
            yield Acquire(lock)
            det.on_write(("shared",))
            yield Release(lock)

        det = self._two_workers(writer, writer)
        assert det.stats.races == 0
        assert det.stats.lock_acquires == 2
        assert det.stats.lock_releases == 2

    def test_dispatch_edge_orders_setup_before_worker(self):
        loop = EventLoop()
        det = attach_race_detector(loop)
        det.on_write(("config",))  # main, before any event

        def reader(detector):
            yield Delay(5)
            detector.on_read(("config",))

        loop.spawn(reader(det))
        loop.run()
        assert det.stats.races == 0

    def test_queue_handoff_edge(self):
        loop = EventLoop()
        det = attach_race_detector(loop)
        queue = JobQueue()

        def producer(detector):
            yield Delay(1)
            detector.on_write(("item",))
            loop.put(queue, "payload")

        def consumer(detector):
            got = yield Take(queue)
            assert got == "payload"
            detector.on_read(("item",))

        loop.spawn(producer(det))
        loop.spawn(consumer(det))
        loop.run()
        # Direct hand-off rides the resume event's dispatch snapshot.
        assert det.stats.races == 0

    def test_buffered_queue_handoff_edge(self):
        loop = EventLoop()
        det = attach_race_detector(loop)
        queue = JobQueue()

        def producer(detector):
            yield Delay(1)
            detector.on_write(("item",))
            loop.put(queue, "payload")  # no waiter yet: buffered

        def consumer(detector):
            yield Delay(50)
            yield Take(queue)
            detector.on_read(("item",))

        loop.spawn(producer(det))
        loop.spawn(consumer(det))
        loop.run()
        assert det.stats.races == 0
        assert det.stats.queue_handoffs == 1  # buffered item carried hb

    def test_io_fifo_edge_orders_submit_states(self):
        device = Resource("device")

        def first(det):
            det.on_write(("submitted",))
            yield Io(device, 100)

        def second(det):
            yield Io(device, 100)
            det.on_read(("submitted",))

        det = self._two_workers(first, second)
        assert det.stats.races == 0
        assert det.stats.resource_admits == 2

    def test_quiescence_edge_orders_post_run_reads(self):
        loop = EventLoop()
        det = attach_race_detector(loop)

        def writer(detector):
            yield Delay(10)
            detector.on_write(("result",))

        loop.spawn(writer(det))
        loop.run()
        det.on_read(("result",))  # back on main after full drain
        assert det.stats.races == 0

    def test_raise_mode_throws_on_first_race(self):
        def writer(det):
            yield Delay(10)
            det.on_write(("shared",))

        with pytest.raises(RaceViolation):
            self._two_workers(writer, writer, mode="raise")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RaceDetector(mode="warn")


class TestScopesAndNaming:
    def test_scopes_keep_locations_distinct(self):
        loop = EventLoop()
        det = attach_race_detector(loop)
        shard0 = det.scope("shard0")
        shard1 = det.scope("shard1")

        def writer(scope):
            yield Delay(10)
            scope.on_write(("frame", 17))

        loop.spawn(writer(shard0))
        loop.spawn(writer(shard1))
        loop.run()
        assert det.stats.races == 0  # distinct locations, no conflict

    def test_same_scope_still_races(self):
        loop = EventLoop()
        det = attach_race_detector(loop)
        shard0 = det.scope("shard0")

        def writer(scope):
            yield Delay(10)
            scope.on_write(("frame", 17))

        loop.spawn(writer(shard0))
        loop.spawn(writer(shard0))
        loop.run()
        assert det.stats.races == 1
        assert det.races[0].location == ("shard0", "frame", 17)
        assert det.races[0].location_str == "shard0.frame.17"

    def test_registered_names_appear_in_reports(self):
        loop = EventLoop()
        det = attach_race_detector(loop)

        def writer(detector):
            yield Delay(10)
            detector.on_write(("shared",))

        a, b = writer(det), writer(det)
        det.register(a, "alice")
        det.register(b, "bob")
        loop.spawn(a)
        loop.spawn(b)
        loop.run()
        assert det.stats.races == 1
        report = det.races[0]
        assert {report.earlier_task, report.later_task} == {"alice", "bob"}
        assert "alice" in report.format() and "bob" in report.format()

    def test_report_serializes(self):
        loop = EventLoop()
        det = attach_race_detector(loop)

        def writer(detector):
            yield Delay(10)
            detector.on_write(("shared",))

        loop.spawn(writer(det))
        loop.spawn(writer(det))
        loop.run()
        d = det.races[0].to_dict()
        assert d["kind"] == "write/write"
        assert d["location"] == "shared"
        assert d["at_ns"] == 10
        assert "races            1" in det.format_summary()


class TestFixtureAtRuntime:
    """The planted fixture bugs trip the detector; the fixes pass."""

    def setup_method(self):
        racy_worker.COUNTER["n"] = 0

    def test_racy_increment_races(self):
        loop = EventLoop()
        det = attach_race_detector(loop)
        loop.spawn(racy_worker.racy_increment(det))
        loop.spawn(racy_worker.racy_increment(det))
        loop.run()
        assert det.stats.races >= 1
        assert any(r.kind == "write/write" for r in det.races)
        assert racy_worker.COUNTER["n"] == 2

    def test_guarded_increment_clean(self):
        loop = EventLoop()
        det = attach_race_detector(loop)
        lock = Resource("counter.lock")
        loop.spawn(racy_worker.guarded_increment(lock, det))
        loop.spawn(racy_worker.guarded_increment(lock, det))
        loop.run()
        assert det.stats.races == 0
        assert racy_worker.COUNTER["n"] == 2


class TestConcurrencyLintOnFixture:
    """The fixture file is the canonical positive/negative control."""

    def test_exactly_the_planted_bugs_flagged(self):
        with open(FIXTURE_PATH) as fh:
            source = fh.read()
        findings = lint_source("tests/fixtures/racy_worker.py", source)
        flagged = sorted((f.rule, f.line) for f in findings)
        assert flagged == [
            ("RPR007", 31),   # racy_increment COUNTER mutation
            ("RPR008", 53),   # latch_across_yield: Delay under lock
            ("RPR008", 54),   # latch_across_yield: Io under lock
            ("RPR008", 70),   # pinned_across_delay: Delay while pinned
        ]


class TestUnguardedSharedMutationRule:
    def test_flags_global_write(self):
        findings = run_lint("""
            from repro.sched.loop import Delay
            total = 0
            def worker():
                global total
                yield Delay(1)
                total = total + 1
        """)
        assert rules_of(findings) == {"RPR007"}
        assert findings[0].line == 7

    def test_flags_subscript_through_free_name(self):
        findings = run_lint("""
            from repro.sched.loop import Delay
            state = {"n": 0}
            def worker():
                yield Delay(1)
                state["n"] += 1
        """)
        assert rules_of(findings) == {"RPR007"}

    def test_guarded_mutation_clean(self):
        findings = run_lint("""
            from repro.sched.loop import Acquire, Delay, Release
            state = {"n": 0}
            def worker(lock):
                yield Delay(1)
                yield Acquire(lock)
                state["n"] += 1
                yield Release(lock)
        """)
        assert findings == []

    def test_local_state_clean(self):
        findings = run_lint("""
            from repro.sched.loop import Delay
            def worker(jobs):
                done = []
                yield Delay(1)
                done.append(1)
                count = len(done)
                jobs[0] = count
        """)
        # ``done`` and ``count`` are locals; ``jobs`` is a parameter
        # the caller owns — none of these are shared mutations.
        assert findings == []

    def test_plain_generator_not_flagged(self):
        findings = run_lint("""
            state = {"n": 0}
            def ordinary():
                yield 1
                state["n"] += 1
        """)
        assert findings == []  # not a loop coroutine

    def test_suppression_comment(self):
        findings = run_lint("""
            from repro.sched.loop import Delay
            state = {"n": 0}
            def worker():
                yield Delay(1)
                state["n"] += 1  # repro: allow[RPR007] single instance
        """)
        assert findings == []


class TestYieldAcrossCriticalSectionRule:
    def test_flags_delay_under_lock(self):
        findings = run_lint("""
            from repro.sched.loop import Acquire, Delay, Release
            def worker(lock):
                yield Acquire(lock)
                yield Delay(100)
                yield Release(lock)
        """)
        assert rules_of(findings) == {"RPR008"}
        assert findings[0].line == 5

    def test_release_before_suspend_clean(self):
        findings = run_lint("""
            from repro.sched.loop import Acquire, Delay, Release
            def worker(lock):
                yield Acquire(lock)
                yield Release(lock)
                yield Delay(100)
        """)
        assert findings == []

    def test_flags_delay_while_pinned(self):
        findings = run_lint("""
            from repro.sched.loop import Delay
            def worker(pool):
                frames = pool.fetch_extents([(0, 1)], pin=True)
                yield Delay(100)
                pool.unpin(frames)
        """)
        assert rules_of(findings) == {"RPR008"}

    def test_unpin_before_suspend_clean(self):
        findings = run_lint("""
            from repro.sched.loop import Delay
            def worker(pool):
                frames = pool.fetch_extents([(0, 1)], pin=True)
                pool.unpin(frames)
                yield Delay(100)
        """)
        assert findings == []

    def test_pin_false_fetch_clean(self):
        findings = run_lint("""
            from repro.sched.loop import Delay
            def worker(pool):
                frames = pool.fetch_extents([(0, 1)], pin=False)
                yield Delay(100)
        """)
        assert findings == []

    def test_suppression_comment(self):
        findings = run_lint("""
            from repro.sched.loop import Acquire, Io, Release
            def worker(lock, dev):
                yield Acquire(lock)
                yield Io(dev, 10)  # repro: allow[RPR008] covered write
                yield Release(lock)
        """)
        assert findings == []


class TestQuantizeArrivals:
    def test_grid_alignment_and_tenant_monotonicity(self):
        jobs = generate_jobs(tenants=3, per_tenant=20, rate_ops_s=2e5,
                             seed=7, n_keys=8, payload_bytes=64,
                             read_ratio=0.5)
        grid = 20_000
        quantized = quantize_arrivals(jobs, grid_ns=grid)
        assert len(quantized) == len(jobs)
        last: dict[int, int] = {}
        for job in quantized:
            assert job.arrive_ns % grid == 0
            prev = last.get(job.tenant)
            if prev is not None:
                assert job.arrive_ns > prev  # strictly increasing
            last[job.tenant] = job.arrive_ns

    def test_creates_cross_tenant_ties(self):
        jobs = generate_jobs(tenants=2, per_tenant=24, rate_ops_s=2e5,
                             seed=0, n_keys=8, payload_bytes=64,
                             read_ratio=0.5)
        quantized = quantize_arrivals(jobs, grid_ns=20_000)
        times = [j.arrive_ns for j in quantized]
        assert len(set(times)) < len(times)  # ties exist to perturb


class TestScheduleExplorer:
    def test_self_check_positive_and_negative_controls(self):
        assert _planted_race_schedule(guarded=False) >= 1
        assert _planted_race_schedule(guarded=True) == 0
        ScheduleExplorer(schedules=1, per_tenant=4).self_check()

    def test_small_exploration_is_clean(self):
        result = ScheduleExplorer(schedules=3, per_tenant=8).explore()
        assert result.ok
        assert result.races == 0
        assert result.sanitizer_violations == 0
        assert result.invariant_failures == []
        assert len(result.outcomes) == 3
        assert len({o.seed for o in result.outcomes}) == 3
        digests = {o.store_digest for o in result.outcomes}
        assert digests == {result.store_digest}
        for outcome in result.outcomes:
            assert outcome.lost_acked == 0
            assert outcome.epoch >= 2  # one fenced failover happened
            assert outcome.acked_writes > 0
        assert "verdict          OK" in result.format_summary()

    def test_exploration_digest_reproducible(self):
        first = ScheduleExplorer(schedules=2, per_tenant=8).explore()
        second = ScheduleExplorer(schedules=2, per_tenant=8).explore()
        assert first.exploration_digest == second.exploration_digest
        assert first.store_digest == second.store_digest

    def test_to_dict_round_trips(self):
        result = ScheduleExplorer(schedules=1, per_tenant=6).explore()
        data = result.to_dict()
        assert data["ok"] is True
        assert data["schedules"] == 1
        assert len(data["outcomes"]) == 1
        assert data["exploration_digest"] == result.exploration_digest

    def test_rejects_zero_schedules(self):
        with pytest.raises(ValueError):
            ScheduleExplorer(schedules=0)
