"""Tests for the resumable SHA-256 implementations."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.sha.fast import FastSha256, StateLost, simulate_state_loss
from repro.sha.sha256 import Sha256, Sha256State

# NIST FIPS 180-4 / well-known test vectors.
KNOWN_VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


class TestKnownVectors:
    @pytest.mark.parametrize("message,expected", KNOWN_VECTORS,
                             ids=["empty", "abc", "two-block", "million-a"])
    def test_fips_vectors(self, message, expected):
        assert Sha256(message).hexdigest() == expected

    def test_digest_does_not_consume(self):
        hasher = Sha256(b"abc")
        first = hasher.digest()
        assert hasher.digest() == first
        hasher.update(b"def")
        assert hasher.digest() == hashlib.sha256(b"abcdef").digest()


class TestIncrementalUpdates:
    def test_update_in_pieces_matches_oneshot(self):
        hasher = Sha256()
        for piece in (b"hello ", b"wor", b"ld", b"!" * 200):
            hasher.update(piece)
        expected = hashlib.sha256(b"hello world" + b"!" * 200).hexdigest()
        assert hasher.hexdigest() == expected

    def test_copy_is_independent(self):
        a = Sha256(b"shared prefix")
        b = a.copy()
        a.update(b"-a")
        b.update(b"-b")
        assert a.digest() == hashlib.sha256(b"shared prefix-a").digest()
        assert b.digest() == hashlib.sha256(b"shared prefix-b").digest()

    @given(st.binary(max_size=2048), st.binary(max_size=2048))
    @settings(max_examples=60, deadline=None)
    def test_split_point_irrelevant(self, left, right):
        hasher = Sha256(left)
        hasher.update(right)
        assert hasher.digest() == hashlib.sha256(left + right).digest()

    @given(st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_matches_hashlib(self, data):
        assert Sha256(data).digest() == hashlib.sha256(data).digest()


class TestResumableState:
    def test_state_roundtrip_resumes_hashing(self):
        prefix, suffix = b"x" * 777, b"y" * 333
        hasher = Sha256(prefix)
        state = hasher.state()
        resumed = Sha256.resume(state)
        resumed.update(suffix)
        assert resumed.digest() == hashlib.sha256(prefix + suffix).digest()

    def test_state_serialization_roundtrip(self):
        state = Sha256(b"q" * 100).state()
        raw = state.serialize()
        assert len(raw) == Sha256State.SERIALIZED_SIZE
        restored = Sha256State.deserialize(raw)
        assert restored == state
        resumed = Sha256.resume(restored)
        resumed.update(b"tail")
        assert resumed.digest() == hashlib.sha256(b"q" * 100 + b"tail").digest()

    def test_deserialize_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            Sha256State.deserialize(b"short")

    def test_resume_rejects_inconsistent_state(self):
        bad = Sha256State(chaining=b"\x00" * 32, length=100, tail=b"abc")
        with pytest.raises(ValueError):
            Sha256.resume(bad)

    def test_resume_rejects_bad_chaining_length(self):
        bad = Sha256State(chaining=b"\x00" * 31, length=0, tail=b"")
        with pytest.raises(ValueError):
            Sha256.resume(bad)

    @given(st.binary(max_size=1024), st.binary(max_size=1024))
    @settings(max_examples=40, deadline=None)
    def test_resume_property(self, prefix, suffix):
        """Resuming at any split point yields the digest of the whole."""
        state = Sha256(prefix).state()
        resumed = Sha256.resume(Sha256State.deserialize(state.serialize()))
        resumed.update(suffix)
        assert resumed.digest() == hashlib.sha256(prefix + suffix).digest()

    def test_length_property(self):
        hasher = Sha256(b"abc")
        hasher.update(b"de")
        assert hasher.length == 5


class TestFastSha256:
    def test_digests_match_hashlib(self):
        data = b"fast path" * 1000
        assert FastSha256(data).digest() == hashlib.sha256(data).digest()

    def test_digests_match_reference(self):
        data = bytes(range(256)) * 7
        assert FastSha256(data).digest() == Sha256(data).digest()

    def test_resume_via_registry(self):
        hasher = FastSha256(b"part one|")
        state = hasher.state()
        resumed = FastSha256.resume(state)
        resumed.update(b"part two")
        expected = hashlib.sha256(b"part one|part two").digest()
        assert resumed.digest() == expected

    def test_resume_after_crash_raises_state_lost(self):
        state = FastSha256(b"doomed").state()
        simulate_state_loss()
        with pytest.raises(StateLost):
            FastSha256.resume(state)

    def test_resume_rejects_reference_state(self):
        state = Sha256(b"pure").state()
        with pytest.raises(StateLost):
            FastSha256.resume(state)

    def test_copy_is_independent(self):
        a = FastSha256(b"base")
        b = a.copy()
        b.update(b"!")
        assert a.digest() == hashlib.sha256(b"base").digest()
        assert b.digest() == hashlib.sha256(b"base!").digest()

    def test_length_tracked(self):
        hasher = FastSha256(b"12345")
        assert hasher.length == 5
