"""Tests for the extent allocator and per-tier free lists (Section III-D)."""

import pytest

from repro.core.allocator import ExtentAllocator, StorageFull
from repro.core.extent import AllocationPlan
from repro.core.tier import ExtentTier


@pytest.fixture
def alloc():
    return ExtentAllocator(ExtentTier(tiers_per_level=10), first_pid=100,
                           capacity_pages=1000)


class TestBasicAllocation:
    def test_fresh_allocations_are_contiguous_bump(self, alloc):
        e0 = alloc.allocate_extent(0)
        e1 = alloc.allocate_extent(1)
        assert (e0.pid, e0.npages) == (100, 1)
        assert (e1.pid, e1.npages) == (101, 2)
        assert alloc.allocated_pages == 3

    def test_extent_size_follows_tier(self, alloc):
        assert alloc.allocate_extent(3).npages == 8

    def test_tail_allocation(self, alloc):
        tail = alloc.allocate_tail(5)
        assert tail.npages == 5
        assert alloc.allocated_pages == 5

    def test_tail_rejects_nonpositive(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate_tail(0)

    def test_allocate_plan(self, alloc):
        plan = AllocationPlan(tier_indices=(0, 1), tail_pages=3)
        extents, tail = alloc.allocate_plan(plan)
        assert [e.npages for e in extents] == [1, 2]
        assert tail.npages == 3

    def test_allocate_plan_without_tail(self, alloc):
        extents, tail = alloc.allocate_plan(
            AllocationPlan(tier_indices=(0,), tail_pages=0))
        assert tail is None
        assert len(extents) == 1

    def test_storage_full(self):
        alloc = ExtentAllocator(ExtentTier(), first_pid=0, capacity_pages=4)
        alloc.allocate_extent(2)  # 4 pages
        with pytest.raises(StorageFull):
            alloc.allocate_extent(0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ExtentAllocator(ExtentTier(), first_pid=0, capacity_pages=0)


class TestFreeListReuse:
    def test_freed_extent_is_reused_for_same_tier(self, alloc):
        extent = alloc.allocate_extent(2)
        alloc.free_extents([extent])
        again = alloc.allocate_extent(2)
        assert again.pid == extent.pid
        assert alloc.stats.reused_extents == 1

    def test_free_does_not_serve_other_tiers(self, alloc):
        extent = alloc.allocate_extent(2)
        alloc.free_extents([extent])
        other = alloc.allocate_extent(3)
        assert other.pid != extent.pid
        assert alloc.stats.reused_extents == 0

    def test_freed_tail_reused_on_exact_size(self, alloc):
        tail = alloc.allocate_tail(7)
        alloc.free_tail(tail)
        again = alloc.allocate_tail(7)
        assert again.pid == tail.pid

    def test_freed_tail_not_reused_for_other_size(self, alloc):
        tail = alloc.allocate_tail(7)
        alloc.free_tail(tail)
        other = alloc.allocate_tail(6)
        assert other.pid != tail.pid

    def test_allocated_pages_accounting_with_free(self, alloc):
        extent = alloc.allocate_extent(3)  # 8 pages
        assert alloc.allocated_pages == 8
        alloc.free_extents([extent])
        assert alloc.allocated_pages == 0
        alloc.allocate_extent(3)
        assert alloc.allocated_pages == 8

    def test_reuse_prevents_storage_full(self):
        """Recycling keeps an alloc/free workload running at full device."""
        alloc = ExtentAllocator(ExtentTier(), first_pid=0, capacity_pages=8)
        for _ in range(100):
            extent = alloc.allocate_extent(2)  # 4 pages, half the device
            alloc.free_extents([extent])
        assert alloc.stats.reused_extents == 99

    def test_free_list_length(self, alloc):
        extents = [alloc.allocate_extent(1) for _ in range(3)]
        alloc.free_extents(extents)
        assert alloc.free_list_length(1) == 3
        assert alloc.free_list_length(0) == 0

    def test_utilization(self, alloc):
        alloc.allocate_extent(5)  # 32 pages of 1000
        assert alloc.utilization() == pytest.approx(0.032)

    def test_reuse_ratio_stat(self, alloc):
        e = alloc.allocate_extent(0)
        alloc.free_extents([e])
        alloc.allocate_extent(0)
        assert alloc.stats.reuse_ratio == pytest.approx(0.5)
