"""Tests for the interval-numbered namespace accelerator."""

import random

from repro.db import BlobDB, EngineConfig
from repro.db.config import INDEX_ENGINES
from repro.namespace import NamespaceIndex
from repro.objectstore import ObjectStore


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def seeded_db(keys, table="t", config=None):
    db = BlobDB(config or small_config())
    db.create_table(table)
    for lo in range(0, len(keys), 32):
        with db.transaction() as txn:
            for key in keys[lo:lo + 32]:
                db.put(txn, table, key, b"v" * 10)
    return db


def brute_subtree(db, table, prefix):
    """The scan-the-table answer the accelerator must reproduce."""
    out = set()
    for key, _ in db.scan(table):
        if key.startswith(b"\x00"):
            continue
        if not prefix or key.startswith(prefix):
            out.add(key)
    return out


class TestBuildAndQuery:
    def test_subtree_matches_brute_force(self):
        keys = [b"a/%02d/f%03d" % (i % 5, i) for i in range(60)]
        keys += [b"b/deep/er/%03d" % i for i in range(20)]
        db = seeded_db(keys)
        ns = NamespaceIndex.build(db)
        assert db.ns is ns
        assert ns.verify() == []
        node = ns.resolve("t", b"a")
        got = {found.key for found in ns.iter_subtree(node)
               if found.is_file}
        assert got == brute_subtree(db, "t", b"a/")
        assert ns.range_scans >= 1

    def test_subtree_stats_totals(self):
        keys = [b"d/%03d" % i for i in range(10)]
        db = seeded_db(keys)
        ns = NamespaceIndex.build(db)
        root = ns.resolve("t")
        totals = ns.subtree_stats(root)
        assert totals["files"] == 10
        assert totals["bytes"] == 100  # 10 files x 10 bytes
        assert totals["dirs"] == 1  # the d/ directory

    def test_runs_on_every_index_engine(self):
        keys = [b"x/%04d" % i for i in range(40)]
        for engine in INDEX_ENGINES:
            db = seeded_db(keys, config=small_config(index_structure=engine))
            ns = NamespaceIndex.build(db)
            assert ns.verify() == [], engine
            node = ns.resolve("t", b"x")
            files = [f for f in ns.subtree(node) if f.is_file]
            assert len(files) == 40, engine


class TestMaintenance:
    def test_committed_churn_matches_fresh_rebuild(self):
        keys = [b"dir%d/f%03d" % (i % 3, i) for i in range(45)]
        db = seeded_db(keys)
        ns = NamespaceIndex.build(db)
        rng = random.Random(3)
        live = set(keys)
        for round_no in range(8):
            with db.transaction() as txn:
                for _ in range(6):
                    if rng.random() < 0.5 and live:
                        victim = rng.choice(sorted(live))
                        db.delete(txn, "t", victim)
                        live.discard(victim)
                    else:
                        fresh = b"new/r%d/f%06d" % (round_no,
                                                    rng.randrange(10**6))
                        if fresh not in live:
                            db.put(txn, "t", fresh, b"z" * 4)
                            live.add(fresh)
        assert ns.verify() == []
        root = ns.resolve("t")
        got = {f.key for f in ns.iter_subtree(root) if f.is_file}
        assert got == live
        # A rebuild from committed state lands on the identical listing.
        fresh_ns = NamespaceIndex(db)
        fresh_root = fresh_ns.resolve("t")
        assert {f.key for f in fresh_ns.iter_subtree(fresh_root)
                if f.is_file} == live

    def test_abort_leaves_accelerator_untouched(self):
        db = seeded_db([b"a/1", b"a/2"])
        ns = NamespaceIndex.build(db)
        before = ns.nodes
        txn = db.begin()
        db.put(txn, "t", b"a/3", b"v")
        db.delete(txn, "t", b"a/1")
        db.abort(txn)
        assert ns.nodes == before
        root = ns.resolve("t")
        assert {f.key for f in ns.iter_subtree(root) if f.is_file} == \
            {b"a/1", b"a/2"}

    def test_renumber_keeps_invariants(self):
        # One directory gets far more children than its initial gap
        # (31 files) can hold, forcing whole-tree renumbers.
        keys = [b"hot/f%04d" % i for i in range(100)]
        db = seeded_db(keys)
        ns = NamespaceIndex.build(db)
        assert ns.renumbers > 0
        assert ns.verify() == []
        node = ns.resolve("t", b"hot")
        assert sum(1 for f in ns.iter_subtree(node) if f.is_file) == 100

    def test_crash_drops_and_rebuild_matches(self):
        keys = [b"p/%03d" % i for i in range(20)]
        db = seeded_db(keys)
        NamespaceIndex.build(db)
        device = db.crash()
        assert db.ns is None, "volatile accelerator dropped on crash"
        db2 = BlobDB.recover(device, small_config())
        ns2 = NamespaceIndex.build(db2)
        assert ns2.verify() == []
        root = ns2.resolve("t")
        assert sum(1 for f in ns2.iter_subtree(root) if f.is_file) == 20


class TestObjectStoreIntegration:
    def seeded_store(self):
        store = ObjectStore(BlobDB(small_config()))
        store.create_bucket("b")
        for i in range(30):
            store.put_object("b", b"logs/%02d/part%04d" % (i % 4, i),
                             b"d" * (i + 1))
        return store

    def test_accelerated_listing_matches_fallback(self):
        plain = self.seeded_store()
        accel = self.seeded_store()
        accel.attach_namespace()
        for prefix in (b"", b"logs/", b"logs/01/"):
            want = [(o.key, o.size, o.etag)
                    for o in plain.list_objects("b", prefix)]
            got = [(o.key, o.size, o.etag)
                   for o in accel.list_objects("b", prefix)]
            assert got == want, prefix
        assert accel.ns.range_scans >= 3

    def test_non_aligned_prefix_falls_back(self):
        store = self.seeded_store()
        store.attach_namespace()
        before = store.ns.range_scans
        found = list(store.list_objects("b", b"logs/01/part"))
        assert len(found) > 0
        assert store.ns.range_scans == before, \
            "mid-component prefix must use the key-space scan"

    def test_put_delete_maintain_accelerator(self):
        store = self.seeded_store()
        store.attach_namespace()
        store.put_object("b", b"logs/99/new", b"xyz")
        store.delete_object("b", b"logs/00/part0000")
        keys = [o.key for o in store.list_objects("b", b"logs/")]
        assert b"logs/99/new" in keys
        assert b"logs/00/part0000" not in keys
        assert store.ns.verify() == []
