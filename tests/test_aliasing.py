"""Tests for virtual-memory aliasing areas and the bitmap range lock."""

import pytest

from repro.buffer.aliasing import AliasingExhausted, AliasingManager
from repro.sim.cost import CostModel


def make_mgr(n_workers=10, local_pages=256, shared_pages=4096):
    return AliasingManager(CostModel(), n_workers=n_workers,
                           worker_local_pages=local_pages,
                           shared_pages=shared_pages)


class TestGeometry:
    def test_paper_example_block_count_and_bitmap(self):
        """160 GB shared / 1 GB local -> 160 blocks -> 3 uint64 words."""
        gb_pages = (1 << 30) // 4096
        mgr = AliasingManager(CostModel(), n_workers=10,
                              worker_local_pages=gb_pages,
                              shared_pages=160 * gb_pages)
        assert mgr.n_blocks == 160
        assert mgr.bitmap_words == 3

    def test_paper_example_total_virtual_budget(self):
        """10 workers x 1 GB + 160 GB shared = 170 GB, 6.25 % over pool."""
        gb_pages = (1 << 30) // 4096
        mgr = AliasingManager(CostModel(), n_workers=10,
                              worker_local_pages=gb_pages,
                              shared_pages=160 * gb_pages)
        total_gb = mgr.total_virtual_pages() * 4096 / (1 << 30)
        assert total_gb == pytest.approx(170)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            AliasingManager(CostModel(), n_workers=0,
                            worker_local_pages=1, shared_pages=1)


class TestLocalArea:
    def test_small_request_uses_local_area(self):
        mgr = make_mgr()
        handle = mgr.acquire(worker_id=3, npages=100)
        assert not handle.is_shared
        assert mgr.stats.local_acquires == 1
        assert mgr.blocks_in_use() == 0

    def test_local_release_shoots_down_tlb(self):
        mgr = make_mgr()
        handle = mgr.acquire(0, 10)
        mgr.release(handle)
        assert mgr.stats.tlb_shootdowns == 1

    def test_bad_worker_rejected(self):
        with pytest.raises(ValueError):
            make_mgr(n_workers=2).acquire(5, 1)

    def test_nonpositive_request_rejected(self):
        with pytest.raises(ValueError):
            make_mgr().acquire(0, 0)


class TestSharedArea:
    def test_large_request_reserves_contiguous_blocks(self):
        mgr = make_mgr(local_pages=256, shared_pages=4096)  # 16 blocks
        handle = mgr.acquire(0, 1000)  # needs 4 blocks
        assert handle.is_shared
        assert handle.shared_nblocks == 4
        assert mgr.blocks_in_use() == 4

    def test_release_clears_blocks(self):
        mgr = make_mgr()
        handle = mgr.acquire(0, 1000)
        mgr.release(handle)
        assert mgr.blocks_in_use() == 0

    def test_reservations_do_not_overlap(self):
        mgr = make_mgr(local_pages=256, shared_pages=4096)
        a = mgr.acquire(0, 512)   # 2 blocks
        b = mgr.acquire(1, 512)   # 2 more
        ranges = [(a.shared_first_block, a.shared_nblocks),
                  (b.shared_first_block, b.shared_nblocks)]
        (fa, na), (fb, nb) = sorted(ranges)
        assert fa + na <= fb

    def test_released_blocks_are_reused(self):
        mgr = make_mgr(local_pages=256, shared_pages=1024)  # 4 blocks
        a = mgr.acquire(0, 1024)  # all 4 blocks
        mgr.release(a)
        b = mgr.acquire(1, 1024)
        assert b.shared_first_block == 0

    def test_exhaustion_raises(self):
        mgr = make_mgr(local_pages=256, shared_pages=1024)  # 4 blocks
        mgr.acquire(0, 1024)
        with pytest.raises(AliasingExhausted):
            mgr.acquire(1, 300)

    def test_fragmented_but_sufficient_space_requires_contiguity(self):
        mgr = make_mgr(local_pages=256, shared_pages=1024)  # 4 blocks
        held = [mgr.acquire(0, 300) for _ in range(2)]      # blocks 0-1, 2-3? no:
        # each 300-page request takes 2 blocks; two requests fill all 4.
        with pytest.raises(AliasingExhausted):
            mgr.acquire(1, 300)
        mgr.release(held[0])
        again = mgr.acquire(1, 300)
        assert again.shared_first_block == 0

    def test_double_release_detected(self):
        mgr = make_mgr()
        handle = mgr.acquire(0, 1000)
        mgr.release(handle)
        with pytest.raises(ValueError):
            mgr.release(handle)

    def test_request_larger_than_shared_area_raises(self):
        mgr = make_mgr(local_pages=16, shared_pages=64)
        with pytest.raises(AliasingExhausted):
            mgr.acquire(0, 100000)
