"""Tests for the simulated NVMe device."""

import pytest

from repro.sim.cost import CostModel
from repro.storage.device import DeviceFull, DeviceStats, IoRequest, SimulatedNVMe


@pytest.fixture
def device():
    return SimulatedNVMe(CostModel(), capacity_pages=256, page_size=4096)


PAGE = 4096


class TestReadWrite:
    def test_roundtrip_single_page(self, device):
        payload = b"\xab" * PAGE
        device.write(10, payload)
        assert device.read(10, 1) == payload

    def test_roundtrip_multi_page(self, device):
        payload = bytes(range(256)) * (PAGE // 256) * 3
        device.write(5, payload)
        assert device.read(5, 3) == payload

    def test_unwritten_pages_read_as_zero(self, device):
        assert device.read(100, 1) == b"\x00" * PAGE

    def test_partial_page_write_rejected(self, device):
        with pytest.raises(ValueError):
            device.write(0, b"too short")

    def test_write_beyond_capacity_raises(self, device):
        with pytest.raises(DeviceFull):
            device.write(255, b"\x00" * (2 * PAGE))

    def test_negative_pid_rejected(self, device):
        with pytest.raises(ValueError):
            device.read(-1, 1)

    def test_overwrite_replaces_content(self, device):
        device.write(3, b"\x01" * PAGE)
        device.write(3, b"\x02" * PAGE)
        assert device.read(3, 1) == b"\x02" * PAGE

    def test_peek_does_not_charge_time(self, device):
        device.write(1, b"\x07" * PAGE)
        before = device.model.clock.now_ns
        assert device.peek(1) == b"\x07" * PAGE
        assert device.model.clock.now_ns == before


class TestBatchSubmit:
    def test_mixed_batch_returns_positional_results(self, device):
        device.write(0, b"A" * PAGE)
        results = device.submit([
            IoRequest(pid=0, npages=1),
            IoRequest(pid=8, npages=1, data=b"B" * PAGE),
            IoRequest(pid=0, npages=1),
        ])
        assert results[0] == b"A" * PAGE
        assert results[1] is None
        assert results[2] == b"A" * PAGE
        assert device.peek(8) == b"B" * PAGE

    def test_empty_batch_is_noop(self, device):
        before = device.model.clock.now_ns
        assert device.submit([]) == []
        assert device.model.clock.now_ns == before

    def test_batch_cheaper_than_serial(self):
        serial = SimulatedNVMe(CostModel(), capacity_pages=256)
        for i in range(16):
            serial.read(i, 1)
        batched = SimulatedNVMe(CostModel(), capacity_pages=256)
        batched.submit([IoRequest(pid=i, npages=1) for i in range(16)])
        assert batched.model.clock.now_ns < serial.model.clock.now_ns / 4

    def test_write_size_mismatch_rejected(self, device):
        with pytest.raises(ValueError):
            device.submit([IoRequest(pid=0, npages=2, data=b"x" * PAGE)])


class TestAccounting:
    def test_write_categories_tracked(self, device):
        device.write(0, b"d" * PAGE, category="data")
        device.write(1, b"w" * (2 * PAGE), category="wal")
        device.write(3, b"j" * PAGE, category="journal")
        cats = device.stats.bytes_written_by_category
        assert cats["data"] == PAGE
        assert cats["wal"] == 2 * PAGE
        assert cats["journal"] == PAGE
        assert device.stats.bytes_written == 4 * PAGE

    def test_custom_category_accepted(self, device):
        device.write(0, b"x" * PAGE, category="exotic")
        assert device.stats.bytes_written_by_category["exotic"] == PAGE

    def test_write_amplification(self, device):
        device.write(0, b"d" * PAGE, category="data")
        device.write(1, b"w" * PAGE, category="wal")
        assert device.stats.write_amplification(PAGE) == 2.0

    def test_write_amplification_rejects_zero_payload(self, device):
        with pytest.raises(ValueError):
            device.stats.write_amplification(0)

    def test_read_stats(self, device):
        device.write(0, b"r" * (4 * PAGE))
        device.read(0, 4)
        assert device.stats.bytes_read == 4 * PAGE
        assert device.stats.read_requests == 1

    def test_snapshot_delta(self, device):
        device.write(0, b"1" * PAGE, category="data")
        snap = device.stats.snapshot()
        device.write(1, b"2" * PAGE, category="wal")
        device.read(0, 1)
        delta = device.stats.delta_since(snap)
        assert delta.bytes_written_by_category["wal"] == PAGE
        assert delta.bytes_written_by_category["data"] == 0
        assert delta.bytes_read == PAGE

    def test_delta_includes_category_born_after_snapshot(self, device):
        # Regression: a category whose first write lands *between* the
        # two snapshots must still appear in the delta (the subtraction
        # has to iterate the union of keys, not the earlier dict's).
        device.write(0, b"1" * PAGE, category="data")
        snap = device.stats.snapshot()
        device.write(1, b"n" * (2 * PAGE), category="newborn")
        delta = device.stats.delta_since(snap)
        assert delta.bytes_written_by_category["newborn"] == 2 * PAGE
        assert delta.write_requests_by_category["newborn"] == 1
        assert "newborn" not in snap.bytes_written_by_category
        # And the snapshot is a deep copy: later writes don't mutate it.
        assert snap.bytes_written_by_category["data"] == PAGE
        assert sum(snap.bytes_written_by_category.values()) == PAGE

    def test_resident_pages(self, device):
        device.write(0, b"x" * (3 * PAGE))
        assert device.resident_pages() == 3


class TestConstruction:
    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            SimulatedNVMe(CostModel(), capacity_pages=0)
        with pytest.raises(ValueError):
            SimulatedNVMe(CostModel(), capacity_pages=10, page_size=0)

    def test_capacity_bytes(self):
        dev = SimulatedNVMe(CostModel(), capacity_pages=10, page_size=512)
        assert dev.capacity_bytes == 5120

    def test_stats_default_categories(self):
        stats = DeviceStats()
        assert stats.bytes_written == 0
        assert "dwb" in stats.bytes_written_by_category


class TestCategoryAttribution:
    """Every byte the engine writes lands in exactly one category."""

    def test_engine_workload_partitions_written_bytes(self):
        from repro.db import BlobDB, EngineConfig
        from repro.storage.device import WRITE_CATEGORIES

        db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                                 catalog_pages=128, buffer_pool_pages=4096))
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"big", b"B" * 300_000)
            db.put_blob(txn, "t", b"small", b"s" * 900)
        with db.transaction() as txn:
            db.append_blob(txn, "t", b"small", b"+" * 64)
            db.delete_blob(txn, "t", b"big")
        db.checkpoint()
        stats = db.device.stats
        used = {c: v for c, v in stats.bytes_written_by_category.items()
                if v}
        # No unknown or default category leaks from any engine write path,
        # and the per-category cells sum exactly to the total.
        assert set(used) <= set(WRITE_CATEGORIES)
        assert sum(used.values()) == stats.bytes_written
        assert used["data"] > 0 and used["wal"] > 0 and used["meta"] > 0

    def test_obs_counters_agree_with_device_accounting(self):
        from repro import obs
        from repro.db import BlobDB, EngineConfig

        db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                                 catalog_pages=128, buffer_pool_pages=4096))
        db.create_table("t")
        tracer = obs.attach(db.model)
        before = db.device.stats.snapshot()
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"x" * 50_000)
        db.checkpoint()
        delta = db.device.stats.delta_since(before)
        counter = tracer.metrics.counters["device.write_bytes"]
        for category, nbytes in delta.bytes_written_by_category.items():
            if nbytes:
                assert counter.get(category=category) == nbytes, category
        assert counter.total() == delta.bytes_written
