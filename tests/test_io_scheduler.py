"""Tests for the SQ/CQ I/O scheduler: coalescing, queue depth, faults."""

import pytest

from repro import obs
from repro.io import IoScheduler
from repro.sim.cost import SYSCALL_NS, CostModel, CostParams
from repro.storage.device import SimulatedNVMe
from repro.storage.faults import FaultPlan, FaultyNVMe, RetryPolicy

PAGE = 4096


def make_sched(queue_depth=32, max_merge_pages=64, capacity_pages=512):
    model = CostModel()
    device = SimulatedNVMe(model, capacity_pages=capacity_pages)
    return IoScheduler(device, model, queue_depth=queue_depth,
                       max_merge_pages=max_merge_pages), device, model


def fill(device, pid, npages, byte):
    device.write(pid, bytes([byte]) * npages * PAGE, background=True)


class TestCoalescing:
    def test_adjacent_reads_merge_into_one_command(self):
        sched, device, _ = make_sched()
        fill(device, 8, 4, 0xAA)
        before = device.stats.read_requests
        t1 = sched.submit_read(8, 2)
        t2 = sched.submit_read(10, 2)
        sched.drain()
        assert device.stats.read_requests - before == 1
        assert sched.stats.requests_in == 2
        assert sched.stats.requests_out == 1
        assert sched.stats.coalesced == 1
        assert t1.result == b"\xaa" * 2 * PAGE
        assert t2.result == b"\xaa" * 2 * PAGE

    def test_merged_read_payloads_slice_back_per_ticket(self):
        sched, device, _ = make_sched()
        fill(device, 20, 1, 0x01)
        fill(device, 21, 2, 0x02)
        t1 = sched.submit_read(21, 2)  # submission order != pid order
        t2 = sched.submit_read(20, 1)
        sched.drain()
        assert t1.result == b"\x02" * 2 * PAGE
        assert t2.result == b"\x01" * PAGE

    def test_non_adjacent_requests_stay_separate(self):
        sched, device, _ = make_sched()
        fill(device, 0, 1, 0)
        fill(device, 5, 1, 0)
        sched.submit_read(0, 1)
        sched.submit_read(5, 1)
        sched.drain()
        assert sched.stats.requests_out == 2
        assert sched.stats.coalesce_ratio == 0.0

    def test_max_merge_pages_caps_the_run(self):
        sched, device, _ = make_sched(max_merge_pages=4)
        fill(device, 0, 8, 0)
        for pid in range(0, 8, 2):
            sched.submit_read(pid, 2)
        sched.drain()
        # Eight adjacent pages, cap 4: two merged commands, not one.
        assert sched.stats.requests_out == 2

    def test_reads_and_writes_never_merge(self):
        sched, device, _ = make_sched()
        fill(device, 0, 2, 0)
        sched.submit_read(0, 1)
        sched.submit_write(1, b"w" * PAGE)
        sched.drain()
        assert sched.stats.requests_out == 2
        assert device.read(1, 1) == b"w" * PAGE

    def test_write_categories_never_merge(self):
        sched, device, _ = make_sched()
        sched.submit_write(0, b"a" * PAGE, category="data")
        sched.submit_write(1, b"b" * PAGE, category="wal")
        sched.drain()
        assert sched.stats.requests_out == 2
        assert device.stats.bytes_written_by_category["data"] == PAGE
        assert device.stats.bytes_written_by_category["wal"] == PAGE

    def test_adjacent_writes_merge_and_land_correctly(self):
        sched, device, _ = make_sched()
        before = device.stats.write_requests
        sched.submit_write(4, b"x" * PAGE)
        sched.submit_write(5, b"y" * 2 * PAGE)
        sched.drain()
        assert device.stats.write_requests - before == 1
        assert device.read(4, 1) == b"x" * PAGE
        assert device.read(5, 2) == b"y" * 2 * PAGE


class TestDrain:
    def test_drain_clears_pending_and_marks_done(self):
        sched, device, _ = make_sched()
        fill(device, 0, 1, 0)
        ticket = sched.submit_read(0, 1)
        assert sched.pending == 1
        drained = sched.drain()
        assert sched.pending == 0
        assert drained == [ticket]
        assert ticket.done
        assert sched.drain() == []

    def test_foreground_drain_charges_syscall_pair(self):
        sched, device, model = make_sched()
        fill(device, 0, 1, 0)
        sched.submit_read(0, 1)
        start = model.clock.now_ns
        sched.drain()
        batched = model.clock.now_ns - start
        # Same single read, straight through the device.
        model2 = CostModel()
        device2 = SimulatedNVMe(model2, capacity_pages=512)
        fill(device2, 0, 1, 0)
        start2 = model2.clock.now_ns
        device2.read(0, 1)
        direct = model2.clock.now_ns - start2
        pair = SYSCALL_NS["io_submit"] + SYSCALL_NS["io_getevents"]
        assert batched == pytest.approx(direct + pair)

    def test_background_drain_charges_no_time(self):
        sched, device, model = make_sched()
        start = model.clock.now_ns
        sched.submit_write(0, b"z" * PAGE)
        sched.drain(background=True)
        assert model.clock.now_ns == start
        assert device.stats.bytes_written == PAGE

    def test_obs_counters_and_depth_histogram(self):
        sched, device, model = make_sched()
        tracer = obs.attach(model)
        fill(device, 0, 4, 0)
        sched.submit_read(0, 2)
        sched.submit_read(2, 2)
        sched.drain()
        metrics = tracer.metrics
        assert metrics.counter("io.requests_in").total() == 2
        assert metrics.counter("io.requests_out").total() == 1
        assert metrics.counter("io.coalesced").total() == 1
        assert metrics.counter("io.drains").total() == 1
        assert metrics.histogram("io.queue_depth").count == 1

    def test_validation(self):
        model = CostModel()
        device = SimulatedNVMe(model, capacity_pages=8)
        with pytest.raises(ValueError):
            IoScheduler(device, model, queue_depth=0)
        with pytest.raises(ValueError):
            IoScheduler(device, model, max_merge_pages=0)


class TestQueueDepthCost:
    def _batch_time(self, queue_depth, n_requests=32):
        sched, device, model = make_sched(queue_depth=queue_depth,
                                          capacity_pages=4 * n_requests)
        fill(device, 0, 4 * n_requests, 0)
        start = model.clock.now_ns
        for i in range(n_requests):
            # Gaps of 2 pages: nothing coalesces, depth is isolated.
            sched.submit_read(4 * i, 2)
        sched.drain()
        return model.clock.now_ns - start

    def test_deeper_queues_are_monotonically_cheaper(self):
        t1 = self._batch_time(1)
        t4 = self._batch_time(4)
        t16 = self._batch_time(16)
        assert t1 > t4 > t16

    def test_depth_capped_by_device_queue_depth(self):
        cap = CostParams().ssd_queue_depth
        assert self._batch_time(cap) == self._batch_time(4 * cap)

    def test_single_request_price_matches_direct_read(self):
        sched, device, model = make_sched()
        fill(device, 0, 2, 0)
        start = model.clock.now_ns
        sched.submit_read(0, 2)
        sched.drain()
        batched = model.clock.now_ns - start
        model2 = CostModel()
        device2 = SimulatedNVMe(model2, capacity_pages=8)
        fill(device2, 0, 2, 0)
        start2 = model2.clock.now_ns
        device2.read(0, 2)
        direct = model2.clock.now_ns - start2
        # Identical device charge; the scheduler adds only its syscalls.
        pair = SYSCALL_NS["io_submit"] + SYSCALL_NS["io_getevents"]
        assert batched == pytest.approx(direct + pair)

    def test_determinism_same_seed_same_cost(self):
        assert self._batch_time(8) == self._batch_time(8)


class TestFaultAtomicity:
    def test_failed_drain_preserves_pending_queue(self):
        model = CostModel()
        plan = FaultPlan(seed=3, transient_error=1.0,
                         max_consecutive_transients=1)
        device = FaultyNVMe(SimulatedNVMe(model, capacity_pages=64), plan)
        sched = IoScheduler(device, model)
        sched.submit_write(0, b"a" * PAGE)
        sched.submit_write(7, b"b" * PAGE)
        with pytest.raises(Exception):
            sched.drain()
        assert sched.pending == 2

    def test_retry_policy_redrains_whole_batch(self):
        model = CostModel()
        plan = FaultPlan(seed=5, transient_error=0.9,
                         max_consecutive_transients=2)
        device = FaultyNVMe(SimulatedNVMe(model, capacity_pages=64), plan)
        sched = IoScheduler(device, model)
        retry = RetryPolicy(model, attempts=4)
        for i in range(4):
            sched.submit_write(8 * i, bytes([i + 1]) * PAGE)
        retry.run(sched.drain)
        assert sched.pending == 0
        for i in range(4):
            # Verify through the inner device: no further fault draws.
            assert device.inner.read(8 * i, 1, verify=False) == \
                bytes([i + 1]) * PAGE
