"""End-to-end tests of the BlobDB engine: CRUD, transactions, locking."""

import pytest

from repro.core.blob_state import BlobState
from repro.db import (
    BlobDB,
    DuplicateKeyError,
    EngineConfig,
    KeyNotFoundError,
    TableNotFoundError,
    TransactionConflict,
    TransactionStateError,
)


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


@pytest.fixture
def db():
    database = BlobDB(small_config())
    database.create_table("image")
    return database


class TestTables:
    def test_create_and_list(self, db):
        db.create_table("document")
        assert db.list_tables() == ["document", "image"]

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(DuplicateKeyError):
            db.create_table("image")

    def test_reserved_name_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_table("\x00secret")
        with pytest.raises(ValueError):
            db.create_table("")

    def test_unknown_table(self, db):
        with db.transaction() as txn:
            with pytest.raises(TableNotFoundError):
                db.put_blob(txn, "nope", b"k", b"data")


class TestInlineValues:
    def test_put_get(self, db):
        with db.transaction() as txn:
            db.put(txn, "image", b"meta", b"hello")
        assert db.get("image", b"meta") == b"hello"

    def test_get_missing_raises(self, db):
        with pytest.raises(KeyNotFoundError):
            db.get("image", b"missing")

    def test_duplicate_key_rejected(self, db):
        with db.transaction() as txn:
            db.put(txn, "image", b"k", b"1")
        txn = db.begin()
        with pytest.raises(DuplicateKeyError):
            db.put(txn, "image", b"k", b"2")
        db.abort(txn)

    def test_delete_inline(self, db):
        with db.transaction() as txn:
            db.put(txn, "image", b"k", b"v")
        with db.transaction() as txn:
            db.delete(txn, "image", b"k")
        assert not db.exists("image", b"k")


class TestBlobCrud:
    def test_put_and_read_roundtrip(self, db):
        payload = bytes(range(256)) * 100
        with db.transaction() as txn:
            state = db.put_blob(txn, "image", b"cat.jpg", payload)
        assert isinstance(state, BlobState)
        assert db.read_blob("image", b"cat.jpg") == payload

    def test_read_via_view(self, db):
        payload = b"zebra" * 5000
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"z", payload)
        with db.read_blob_view("image", b"z") as view:
            assert view.contiguous() == payload

    def test_multi_extent_blob(self, db):
        """A 100 KB BLOB spans several tiered extents."""
        payload = b"\xaa" * 100_000
        with db.transaction() as txn:
            state = db.put_blob(txn, "image", b"big", payload)
        assert state.num_extents > 2
        assert db.read_blob("image", b"big") == payload

    def test_empty_blob(self, db):
        with db.transaction() as txn:
            state = db.put_blob(txn, "image", b"empty", b"")
        assert state.size == 0
        assert state.num_extents == 0
        assert db.read_blob("image", b"empty") == b""

    def test_blob_with_tail_extent(self, db):
        payload = b"t" * (6 * 4096)  # paper's Figure 1 shape
        with db.transaction() as txn:
            state = db.put_blob(txn, "image", b"tailed", payload,
                                use_tail=True)
        assert state.tail_extent is not None
        assert state.capacity_pages(db.tiers) == 6  # zero waste
        assert db.read_blob("image", b"tailed") == payload

    def test_duplicate_blob_key_rejected(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"1")
        txn = db.begin()
        with pytest.raises(DuplicateKeyError):
            db.put_blob(txn, "image", b"k", b"2")
        db.abort(txn)

    def test_delete_blob_and_space_reuse(self, db):
        payload = b"d" * 50_000
        with db.transaction() as txn:
            state = db.put_blob(txn, "image", b"gone", payload)
        first_pid = state.extent_pids[0]
        with db.transaction() as txn:
            db.delete_blob(txn, "image", b"gone")
        assert not db.exists("image", b"gone")
        # A same-shaped BLOB reuses the freed extents (per-tier lists).
        with db.transaction() as txn:
            state2 = db.put_blob(txn, "image", b"new", payload)
        assert state2.extent_pids[0] == first_pid

    def test_blob_state_has_correct_metadata(self, db):
        import hashlib
        payload = b"meta-check" * 1000
        with db.transaction() as txn:
            state = db.put_blob(txn, "image", b"m", payload)
        assert state.size == len(payload)
        assert state.sha256 == hashlib.sha256(payload).digest()
        assert state.prefix == payload[:32]

    def test_get_on_blob_raises_type_error(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"b", b"blobby")
        with pytest.raises(TypeError):
            db.get("image", b"b")

    def test_single_flush_write_amplification(self, db):
        """The headline claim: BLOB content hits the device exactly once."""
        payload = b"\x5a" * 200_000
        before = db.device.stats.snapshot()
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"wa", payload)
        delta = db.device.stats.delta_since(before)
        data_written = delta.bytes_written_by_category["data"]
        wal_written = delta.bytes_written_by_category["wal"]
        # Content written once (page-rounded), only metadata in the WAL.
        assert data_written <= len(payload) + 2 * 4096
        assert wal_written < 8192


class TestGrow:
    def test_append_roundtrip(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"g", b"start-")
        with db.transaction() as txn:
            state = db.append_blob(txn, "image", b"g", b"finish")
        assert db.read_blob("image", b"g") == b"start-finish"
        assert state.size == 12

    def test_append_multiple_extents(self, db):
        import hashlib
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"g", b"a" * 10_000)
        with db.transaction() as txn:
            state = db.append_blob(txn, "image", b"g", b"b" * 60_000)
        expected = b"a" * 10_000 + b"b" * 60_000
        assert db.read_blob("image", b"g") == expected
        assert state.sha256 == hashlib.sha256(expected).digest()

    def test_append_does_not_reread_existing_content(self, db):
        """The resumable hash means growth touches no old extents."""
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"g", b"x" * 500_000)
        before = db.device.stats.bytes_read
        with db.transaction() as txn:
            db.append_blob(txn, "image", b"g", b"y" * 1000)
        # No device reads of the half-megabyte of existing content.
        assert db.device.stats.bytes_read - before < 100_000

    def test_append_to_tail_extent_blob_clones_tail(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"t", b"1" * (6 * 4096), use_tail=True)
        with db.transaction() as txn:
            state = db.append_blob(txn, "image", b"t", b"2" * 4096)
        assert state.tail_extent is None  # tail was cloned to a tier
        assert db.read_blob("image", b"t") == b"1" * (6 * 4096) + b"2" * 4096

    def test_append_updates_prefix_of_short_blob(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"p", b"abc")
        with db.transaction() as txn:
            state = db.append_blob(txn, "image", b"p", b"def")
        assert state.prefix == b"abcdef"


class TestUpdateSchemes:
    @pytest.fixture
    def seeded(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"u", bytes(range(256)) * 400)
        return db

    def test_delta_update(self, seeded):
        with seeded.transaction() as txn:
            seeded.update_blob_range(txn, "image", b"u", 1000, b"PATCH",
                                     scheme="delta")
        content = seeded.read_blob("image", b"u")
        assert content[1000:1005] == b"PATCH"
        assert len(content) == 256 * 400

    def test_clone_update(self, seeded):
        old_state = seeded.get_state("image", b"u")
        with seeded.transaction() as txn:
            new_state = seeded.update_blob_range(txn, "image", b"u", 0,
                                                 b"CLONED", scheme="clone")
        assert seeded.read_blob("image", b"u")[:6] == b"CLONED"
        # The touched extent was redirected to a clone.
        assert new_state.extent_pids[0] != old_state.extent_pids[0]

    def test_auto_picks_delta_for_small_patch(self, seeded):
        with seeded.transaction() as txn:
            state = seeded.get_state("image", b"u")
            result_state = seeded.update_blob_range(
                txn, "image", b"u", 50_000, b"x", scheme="auto")
        assert result_state.extent_pids == state.extent_pids  # in-place

    def test_update_refreshes_digest(self, seeded):
        import hashlib
        with seeded.transaction() as txn:
            seeded.update_blob_range(txn, "image", b"u", 0, b"NEW")
        state = seeded.get_state("image", b"u")
        assert state.sha256 == hashlib.sha256(
            seeded.read_blob("image", b"u")).digest()
        assert state.prefix[:3] == b"NEW"

    def test_update_out_of_bounds_rejected(self, seeded):
        txn = seeded.begin()
        with pytest.raises(ValueError):
            seeded.update_blob_range(txn, "image", b"u", 10**9, b"x")
        seeded.abort(txn)


class TestTransactions:
    def test_abort_rolls_back_insert(self, db):
        txn = db.begin()
        db.put_blob(txn, "image", b"k", b"rollback me")
        db.abort(txn)
        assert not db.exists("image", b"k")

    def test_abort_rolls_back_delete(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"keep me")
        txn = db.begin()
        db.delete_blob(txn, "image", b"k")
        db.abort(txn)
        assert db.read_blob("image", b"k") == b"keep me"

    def test_abort_rolls_back_delta_update(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"original-content" * 100)
        txn = db.begin()
        db.update_blob_range(txn, "image", b"k", 0, b"SCRIBBLE",
                             scheme="delta")
        db.abort(txn)
        assert db.read_blob("image", b"k")[:8] == b"original"

    def test_abort_reclaims_extents(self, db):
        before = db.allocator.allocated_pages
        txn = db.begin()
        db.put_blob(txn, "image", b"k", b"z" * 100_000)
        db.abort(txn)
        assert db.allocator.allocated_pages == before

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                db.put_blob(txn, "image", b"k", b"data")
                raise RuntimeError("boom")
        assert not db.exists("image", b"k")

    def test_write_write_conflict(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"v")
        t1 = db.begin()
        t2 = db.begin()
        db.append_blob(t1, "image", b"k", b"1")
        with pytest.raises(TransactionConflict):
            db.append_blob(t2, "image", b"k", b"2")
        db.abort(t2)
        db.commit(t1)

    def test_shared_readers_do_not_conflict(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"v")
        t1 = db.begin()
        t2 = db.begin()
        assert db.read_blob("image", b"k", txn=t1) == b"v"
        assert db.read_blob("image", b"k", txn=t2) == b"v"
        db.commit(t1)
        db.commit(t2)

    def test_reader_blocks_writer(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"v")
        reader = db.begin()
        db.read_blob("image", b"k", txn=reader)
        writer = db.begin()
        with pytest.raises(TransactionConflict):
            db.delete_blob(writer, "image", b"k")
        db.abort(writer)
        db.commit(reader)

    def test_use_after_commit_rejected(self, db):
        txn = db.begin()
        db.commit(txn)
        with pytest.raises(TransactionStateError):
            db.put_blob(txn, "image", b"k", b"v")

    def test_locks_released_after_commit(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"k", b"v")
        assert len(db.locks) == 0


class TestScan:
    def test_scan_order(self, db):
        with db.transaction() as txn:
            for name in (b"c", b"a", b"b"):
                db.put_blob(txn, "image", name, b"x" + name)
        keys = [k for k, _ in db.scan("image")]
        assert keys == [b"a", b"b", b"c"]

    def test_table_size(self, db):
        with db.transaction() as txn:
            db.put_blob(txn, "image", b"one", b"1")
        assert db.table_size("image") == 1
