"""Tests for the workload generators."""

import random

import pytest

from repro.workloads.gitclone import GitCloneTrace
from repro.workloads.wikipedia import WikipediaCorpus
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload, zipf_sampler


class TestZipf:
    def test_skewed_toward_low_indices(self):
        sample = zipf_sampler(1000, 0.99, random.Random(1))
        hits = [sample() for _ in range(20000)]
        assert all(0 <= h < 1000 for h in hits)
        top10 = sum(1 for h in hits if h < 10)
        assert top10 > len(hits) * 0.2  # heavy head

    def test_deterministic_for_seed(self):
        a = zipf_sampler(100, 0.99, random.Random(5))
        b = zipf_sampler(100, 0.99, random.Random(5))
        assert [a() for _ in range(50)] == [b() for _ in range(50)]

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            zipf_sampler(0, 0.99, random.Random(1))
        with pytest.raises(ValueError):
            zipf_sampler(10, 1.5, random.Random(1))


class TestYcsb:
    def test_load_phase_covers_all_records(self):
        wl = YcsbWorkload(YcsbConfig(n_records=50, payload=100))
        loaded = list(wl.load_phase())
        assert len(loaded) == 50
        assert len({k for k, _ in loaded}) == 50
        assert all(len(v) == 100 for _, v in loaded)

    def test_fixed_payload_size(self):
        wl = YcsbWorkload(YcsbConfig(payload=1234))
        assert len(wl.payload_for(3)) == 1234

    def test_mixed_payload_range(self):
        wl = YcsbWorkload(YcsbConfig(payload=(4096, 10 * 1024 * 1024)))
        sizes = [len(wl.payload_for(i)) for i in range(20)]
        assert all(4096 <= s <= 10 * 1024 * 1024 for s in sizes)
        assert len(set(sizes)) > 5  # actually mixed

    def test_payloads_are_distinct(self):
        wl = YcsbWorkload(YcsbConfig(payload=120))
        assert wl.payload_for(1) != wl.payload_for(1)  # stamped

    def test_read_ratio(self):
        wl = YcsbWorkload(YcsbConfig(n_records=100, payload=64,
                                     read_ratio=0.5))
        ops = list(wl.operations(4000))
        reads = sum(1 for op, _, _ in ops if op == "read")
        assert 0.42 < reads / len(ops) < 0.58

    def test_writes_carry_payloads(self):
        wl = YcsbWorkload(YcsbConfig(n_records=10, payload=64,
                                     read_ratio=0.0))
        for op, _, payload in wl.operations(20):
            assert op == "write"
            assert len(payload) == 64

    def test_keys_within_range(self):
        wl = YcsbWorkload(YcsbConfig(n_records=10, payload=8))
        for _, key, _ in wl.operations(200):
            assert int(key[4:]) < 10


class TestWikipedia:
    def test_quantile_anchors(self):
        """The fitted distribution matches the paper's two anchors."""
        corpus = WikipediaCorpus(n_articles=20000, seed=1)
        over_767 = corpus.fraction_larger_than(767)
        over_8191 = corpus.fraction_larger_than(8191)
        assert 0.37 <= over_767 <= 0.49      # paper: 43 %
        assert 0.03 <= over_8191 <= 0.09     # paper: ~5 %

    def test_content_matches_size(self):
        corpus = WikipediaCorpus(n_articles=50)
        for article in corpus.articles[:10]:
            assert len(corpus.content(article)) == article.size

    def test_content_deterministic(self):
        corpus = WikipediaCorpus(n_articles=10)
        a = corpus.content(corpus.articles[0])
        b = corpus.content(corpus.articles[0])
        assert a == b

    def test_shared_prefixes_exist(self):
        """Many articles share multi-KB lead-ins (defeats prefix indexes)."""
        corpus = WikipediaCorpus(n_articles=600, shared_prefix_fraction=0.5)
        prefixes = {}
        for article in corpus.articles:
            if article.size < 1024:
                continue
            head = corpus.content(article)[:1024]
            prefixes[head] = prefixes.get(head, 0) + 1
        assert max(prefixes.values()) > 3

    def test_view_sampler_prefers_popular(self):
        corpus = WikipediaCorpus(n_articles=500)
        sample = corpus.view_sampler(seed=3)
        hits = [sample() for _ in range(5000)]
        first_article_hits = sum(1 for a in hits if a is corpus.articles[0])
        assert first_article_hits > 5000 / 500  # above uniform share

    def test_total_bytes_positive(self):
        assert WikipediaCorpus(n_articles=100).total_bytes > 100 * 16


class TestGitCloneTrace:
    def test_metadata_ops_dominate(self):
        trace = GitCloneTrace()
        hist = trace.op_histogram()
        metadata_ops = hist["create"] + hist["fstat"] + hist["close"]
        data_ops = hist["write"] + hist["read"]
        assert metadata_ops > data_ops

    def test_create_per_file_plus_pack(self):
        trace = GitCloneTrace(n_files=100, n_dirs=10)
        hist = trace.op_histogram()
        assert hist["create"] == 101
        assert hist["mkdir"] == 10
        assert hist["fstat"] == 101

    def test_pack_dominates_bytes(self):
        trace = GitCloneTrace()
        pack_writes = sum(op.size for op in trace.operations()
                          if op.op == "write" and "pack" in op.path)
        total_writes = sum(op.size for op in trace.operations()
                           if op.op == "write")
        assert pack_writes / total_writes > 0.5

    def test_deterministic(self):
        a = list(GitCloneTrace(seed=5).operations())
        b = list(GitCloneTrace(seed=5).operations())
        assert a == b

    def test_total_bytes(self):
        trace = GitCloneTrace(n_files=10, pack_bytes=1 << 20)
        assert trace.total_bytes > 1 << 20
