"""Tests for replicated shard groups: record framing, quorum commit
pricing, WAL shipping under link faults, read fan-out staleness,
epoch-fenced failover, divergent-tail truncation on rejoin, the
zero-lost-acknowledged-writes torture schedule, and the replicated
router/network front ends."""

import random

import pytest

from repro.db import EngineConfig
from repro.db.errors import (
    KeyNotFoundError,
    QuorumLostError,
    StaleEpochError,
)
from repro.net import (
    RDMA,
    SHARED_MEMORY,
    TCP_ETHERNET,
    ReplicatedBlobServer,
)
from repro.replica import (
    ReplicaGroup,
    ReplicatedShardedBlobDB,
    ReplicationRecord,
)
from repro.storage.faults import FaultPlan, FaultPlanFactory, FaultSpec

#: Heterogeneous member links: primary-local, fast RDMA, slow TCP.
HETERO_LINKS = [SHARED_MEMORY, RDMA, TCP_ETHERNET]


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def make_group(quorum=2, n_replicas=2, **kwargs):
    return ReplicaGroup(n_replicas=n_replicas, quorum=quorum,
                        config=small_config(), **kwargs)


class TestReplicationRecord:
    def test_roundtrip_put_and_delete(self):
        put = ReplicationRecord(lsn=7, epoch=2, op="put", key=b"k",
                                payload=b"\x01\x02")
        assert ReplicationRecord.decode(put.encode()) == put
        dele = ReplicationRecord(lsn=8, epoch=2, op="delete", key=b"k")
        assert ReplicationRecord.decode(dele.encode()) == dele

    def test_wire_bytes_matches_encoding(self):
        rec = ReplicationRecord(lsn=1, epoch=1, op="put", key=b"abc",
                                payload=b"x" * 100)
        assert rec.wire_bytes() == len(rec.encode())

    def test_corruption_and_truncation_detected(self):
        raw = bytearray(ReplicationRecord(lsn=1, epoch=1, op="put",
                                          key=b"k", payload=b"v").encode())
        raw[5] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            ReplicationRecord.decode(bytes(raw))
        with pytest.raises(ValueError, match="truncated"):
            ReplicationRecord.decode(b"\x01\x00")

    def test_invalid_records_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ReplicationRecord(lsn=1, epoch=1, op="upsert", key=b"k")
        with pytest.raises(ValueError, match="no payload"):
            ReplicationRecord(lsn=1, epoch=1, op="delete", key=b"k",
                              payload=b"v")


class TestQuorumCommit:
    def test_write_read_roundtrip_and_convergence(self):
        group = make_group()
        for i in range(12):
            group.put(b"k%02d" % i, bytes([i]) * 200)
        group.delete(b"k00")
        group.drain()
        assert group.get(b"k03") == b"\x03" * 200
        assert not group.exists(b"k00")
        assert group.max_lag() == 0
        # Every member applied the full stream.
        for member in group.members:
            assert member.applied_lsn == group.primary.applied_lsn

    def test_commit_latency_strictly_ordered_by_quorum(self):
        elapsed = {}
        for quorum in (1, 2, 3):
            group = make_group(quorum=quorum, transport=HETERO_LINKS)
            for i in range(20):
                group.put(b"q%02d" % i, b"x" * 400)
            elapsed[quorum] = group.model.clock.now_ns
        # q=1 never waits for a link; q=2 waits for the fast RDMA ack
        # and hides the TCP replica; q=3 pays the slowest link.
        assert elapsed[1] < elapsed[2] < elapsed[3]

    def test_quorum_one_is_asynchronous(self):
        group = make_group(quorum=1, transport=HETERO_LINKS)
        solo = ReplicaGroup(n_replicas=0, quorum=1, config=small_config())
        group.put(b"k", b"v" * 100)
        solo.put(b"k", b"v" * 100)
        # Replicas still apply (on their own clocks) but the group
        # clock only pays the primary plus fan-out bookkeeping — the
        # same order of magnitude as an unreplicated engine.
        assert group.model.clock.now_ns < 2 * solo.model.clock.now_ns
        assert group.stats.records_shipped == 2

    def test_invalid_quorum_rejected(self):
        with pytest.raises(ValueError, match="quorum"):
            make_group(quorum=4)
        with pytest.raises(ValueError, match="quorum"):
            make_group(quorum=0)

    def test_acked_writes_and_makespan_observed(self):
        from repro import obs

        group = make_group()
        tracer = obs.attach(group.model)
        group.put(b"k", b"v" * 50)
        metrics = tracer.metrics
        assert metrics.counter("replica.acked_writes").total() == 1
        assert metrics.counter("replica.records_shipped").total() == 2
        assert metrics.histogram("replica.quorum_makespan_ns").count == 1


class TestWalShipping:
    def test_lost_exchanges_are_retried_inside_member_delta(self):
        links = FaultPlanFactory(FaultSpec(seed=13, network_error=0.3))
        group = make_group(link_faults=links)
        for i in range(25):
            group.put(b"n%02d" % i, b"p" * 150)
        group.drain()
        assert group.ship_retries() > 0
        assert group.max_lag() == 0
        for i in range(25):
            assert group.get(b"n%02d" % i) == b"p" * 150

    def test_partitioned_member_lags_then_catches_up(self):
        group = make_group()
        lagger = group.members[2]
        # Open a long partition window by hand: ships to member 2 fail
        # until its clock walks past the deadline via retry backoff.
        lagger.partitioned_until_ns = lagger.model.clock.now_ns + 3e6
        for i in range(6):
            group.put(b"p%d" % i, b"z" * 100)
        assert lagger.lag(group.primary.applied_lsn) > 0
        for _ in range(10):
            group.catch_up()
            if group.max_lag() == 0:
                break
        assert group.max_lag() == 0
        assert lagger.history == group.primary.history

    def test_catch_up_applies_strictly_in_lsn_order(self):
        group = make_group()
        lagger = group.members[1]
        lagger.partitioned_until_ns = lagger.model.clock.now_ns + 5e5
        group.put(b"a", b"1" * 64)
        group.put(b"b", b"2" * 64)
        group.put(b"c", b"3" * 64)
        for _ in range(10):
            group.catch_up()
            if group.max_lag() == 0:
                break
        assert [r.lsn for r in lagger.history] == \
            list(range(1, len(lagger.history) + 1))


class TestReadFanOut:
    def test_read_any_rotates_over_members(self):
        group = make_group()
        group.put(b"k", b"v" * 80)
        group.drain()
        before = [m.model.clock.now_ns for m in group.members]
        for _ in range(3):
            assert group.read_any(b"k") == b"v" * 80
        after = [m.model.clock.now_ns for m in group.members]
        # Three rotated reads touched all three members' clocks.
        assert all(b > a for a, b in zip(before, after))

    def test_stale_reads_are_counted_not_hidden(self):
        group = make_group()
        group.put(b"k", b"old" * 20)
        group.drain()
        lagger = group.members[1]
        lagger.partitioned_until_ns = lagger.model.clock.now_ns + 1e6
        group.put(b"k", b"new" * 20)
        assert lagger.lag(group.primary.applied_lsn) > 0
        values = {group.read_any(b"k") for _ in range(3)}
        # The lagging member served the stale value; accounting saw it.
        assert values == {b"old" * 20, b"new" * 20}
        assert group.stats.stale_reads >= 1

    def test_stale_read_may_miss_unreplicated_key(self):
        group = make_group()
        lagger = group.members[1]
        lagger.partitioned_until_ns = lagger.model.clock.now_ns + 1e6
        group.put(b"fresh", b"v")
        with pytest.raises(KeyNotFoundError):
            for _ in range(3):
                group.read_any(b"fresh")


class TestFailover:
    def test_crash_promotes_most_caught_up_replica(self):
        group = make_group()
        for i in range(8):
            group.put(b"k%d" % i, b"d" * 120)
        lagger = group.members[1]
        lagger.partitioned_until_ns = lagger.model.clock.now_ns + 1e9
        group.put(b"k8", b"d" * 120)  # member 1 misses this one
        assert group.members[2].applied_lsn > lagger.applied_lsn
        group.crash_primary()
        assert group.primary_id == 2  # highest applied LSN wins
        assert group.epoch == 2
        assert group.stats.failovers == 1
        for i in range(9):
            assert group.get(b"k%d" % i) == b"d" * 120

    def test_election_tie_breaks_to_lowest_member_id(self):
        group = make_group()
        group.put(b"k", b"v" * 60)
        group.drain()  # both replicas at the same LSN
        group.crash_primary()
        assert group.primary_id == 1

    def test_failover_advances_group_clock(self):
        group = make_group()
        group.put(b"k", b"v" * 60)
        before = group.model.clock.now_ns
        group.crash_primary()
        assert group.model.clock.now_ns > before
        assert group.stats.last_failover_ns > 0

    def test_mid_crash_record_dropped_when_unshipped(self):
        group = make_group()
        group.put(b"safe", b"s" * 90)
        group.crash_primary(mid_record=(b"mid", b"m" * 90, 0))
        assert group.get(b"safe") == b"s" * 90
        assert not group.exists(b"mid")

    def test_mid_crash_record_survives_when_shipped(self):
        group = make_group()
        group.put(b"safe", b"s" * 90)
        group.crash_primary(mid_record=(b"mid", b"m" * 90, 2))
        # A shipped copy reached the most-caught-up replica, which won
        # the election: the un-acked record survives whole.
        assert group.get(b"mid") == b"m" * 90

    def test_no_candidates_raises_quorum_lost(self):
        group = ReplicaGroup(n_replicas=0, quorum=1, config=small_config())
        group.put(b"k", b"v")
        with pytest.raises(QuorumLostError):
            group.crash_primary()

    def test_quorum_loss_fails_over_and_retries_write(self):
        group = make_group()
        group.put(b"k0", b"v" * 50)
        # Partition BOTH replicas: the next commit cannot reach quorum,
        # the controller promotes a replica and retries — which also
        # fails (the old primary is not a candidate... it is alive) —
        # so promotion picks a replica and the retry commits with the
        # old primary acting as the ack source.
        for member in group.replicas():
            member.partitioned_until_ns = \
                member.model.clock.now_ns + 10e6
        group.put(b"k1", b"w" * 50)
        assert group.stats.quorum_losses >= 1
        assert group.stats.failovers >= 1
        assert group.get(b"k1") == b"w" * 50


class TestEpochFencingAndRejoin:
    def test_fence_rejects_stale_epoch(self):
        group = make_group()
        group.put(b"k", b"v")
        group.crash_primary()
        with pytest.raises(StaleEpochError):
            group._fence(1)

    def test_rejoin_truncates_divergent_tail(self):
        group = make_group()
        for i in range(6):
            group.put(b"k%d" % i, b"v" * 70)
        old_primary = group.primary_id
        # Crash with an unshipped mid-record: it exists only on the
        # old primary — a divergent tail past the fence point.
        group.crash_primary(mid_record=(b"orphan", b"o" * 70, 0))
        report = group.rejoin(old_primary)
        assert report["truncated"] >= 1
        assert group.stats.fenced_ships == 1
        member = group.members[old_primary]
        assert member.alive and member.epoch == group.epoch
        assert not member.db.exists("blobs", b"orphan")
        # The rejoined member's state matches the authoritative log.
        assert member.applied_lsn == group.primary.applied_lsn
        assert member.history == group.primary.history

    def test_rejoined_member_serves_writes_again(self):
        group = make_group()
        group.put(b"a", b"1" * 40)
        old_primary = group.primary_id
        group.crash_primary()
        group.rejoin(old_primary)
        group.put(b"b", b"2" * 40)
        group.drain()
        assert group.max_lag() == 0
        member = group.members[old_primary]
        assert member.db.read_blob("blobs", b"b") == b"2" * 40

    def test_rejoin_current_primary_rejected(self):
        group = make_group()
        with pytest.raises(ValueError):
            group.rejoin(group.primary_id)

    def test_second_failover_increments_epoch_again(self):
        group = make_group()
        group.put(b"k", b"v" * 30)
        first_old = group.primary_id
        group.crash_primary()
        group.rejoin(first_old)
        group.put(b"k2", b"w" * 30)
        group.crash_primary()
        assert group.epoch == 3
        assert group.get(b"k2") == b"w" * 30


class TestZeroLossTorture:
    """Kill the primary at a drawn batch index under link faults, fail
    over, and assert the zero-loss contract: every quorum-acked write
    readable byte-exact, every un-acked mid-record all-or-nothing."""

    SEEDS = range(300, 330)

    @staticmethod
    def _run_schedule(seed):
        links = FaultPlanFactory(FaultSpec(
            seed=seed, network_error=0.05, latency_spike=0.02,
            latency_spike_ns=300_000.0, partition=0.01,
            partition_max_ns=1_500_000.0))
        group = ReplicaGroup(n_replicas=2, quorum=2,
                             config=small_config(), link_faults=links,
                             name=f"torture{seed}")
        rng = random.Random(seed)
        acked = {}
        n_writes = rng.randrange(10, 24)
        for i in range(n_writes):
            key = b"t%04d" % i
            data = rng.randbytes(rng.randrange(50, 250))
            group.put(key, data)
            acked[key] = data
        old_primary = group.primary_id
        mid = (b"t-mid", rng.randbytes(100), rng.randrange(0, 3))
        group.crash_primary(mid_record=mid)
        return group, acked, mid, old_primary

    def test_no_acked_write_lost_across_seeded_schedules(self):
        for seed in self.SEEDS:
            group, acked, (mid_key, mid_data, _), old = \
                self._run_schedule(seed)
            for key, data in sorted(acked.items()):
                assert group.get(key) == data, (seed, key)
            if group.exists(mid_key):  # all-or-nothing, never torn
                assert group.get(mid_key) == mid_data, seed
            group.rejoin(old)
            for key, data in sorted(acked.items()):
                assert group.get(key) == data, (seed, key)
            member = group.members[old]
            assert member.applied_lsn == group.primary.applied_lsn

    def test_torture_is_deterministic(self):
        def digest(seed):
            group, acked, _, old = self._run_schedule(seed)
            group.rejoin(old)
            s = group.stats
            return (group.epoch, group.primary_id, s.acked_writes,
                    s.records_shipped, group.ship_retries(),
                    s.truncated_records, s.last_failover_ns,
                    group.model.clock.now_ns)
        assert [digest(s) for s in (301, 305)] == \
            [digest(s) for s in (301, 305)]


class TestReplicatedShardedBlobDB:
    def test_batches_route_and_quorum_commit(self):
        rdb = ReplicatedShardedBlobDB(n_groups=3, n_replicas=2, quorum=2,
                                      config=small_config())
        items = [(b"key%03d" % i, bytes([i % 250]) * 90)
                 for i in range(30)]
        rdb.multiput(items)
        assert rdb.multiget([k for k, _ in items]) == \
            [v for _, v in items]
        rdb.delete(items[0][0])
        assert not rdb.exists(items[0][0])

    def test_group_failover_is_local_to_its_group(self):
        rdb = ReplicatedShardedBlobDB(n_groups=3, n_replicas=2, quorum=2,
                                      config=small_config())
        items = [(b"key%03d" % i, b"v" * 60) for i in range(30)]
        rdb.multiput(items)
        epochs_before = [g.epoch for g in rdb.groups]
        rdb.crash_primary(1, mid_record=(b"zz-mid", b"m" * 40, 0))
        assert rdb.groups[1].epoch == epochs_before[1] + 1
        assert [g.epoch for i, g in enumerate(rdb.groups) if i != 1] == \
            [e for i, e in enumerate(epochs_before) if i != 1]
        for key, value in items:
            assert rdb.get(key) == value
        rdb.rejoin(1, [m.member_id for m in rdb.groups[1].members
                       if m.member_id != rdb.groups[1].primary_id][0])
        rdb.drain()

    def test_aggregated_report_sums_replication_counters(self):
        rdb = ReplicatedShardedBlobDB(n_groups=2, n_replicas=2, quorum=2,
                                      config=small_config())
        rdb.multiput([(b"k%d" % i, b"v" * 50) for i in range(10)])
        rdb.crash_primary(0)
        report = rdb.stats_report()
        assert report.replica_groups == 2
        assert report.replica_members == 6
        assert report.replica_quorum == 2
        assert report.replica_acked_writes == 10
        assert report.replica_failovers == 1
        assert report.shard_count == 2
        assert "replication:" in report.format()

    def test_read_any_routes_to_owning_group(self):
        rdb = ReplicatedShardedBlobDB(n_groups=2, n_replicas=1, quorum=2,
                                      config=small_config())
        rdb.put(b"k", b"v" * 44)
        rdb.drain()
        for _ in range(3):
            assert rdb.read_any(b"k") == b"v" * 44


class TestReplicatedBlobServer:
    def test_lost_client_sub_exchange_is_retried_per_group(self):
        rdb = ReplicatedShardedBlobDB(n_groups=3, n_replicas=2, quorum=2,
                                      config=small_config())
        server = ReplicatedBlobServer(
            rdb, TCP_ETHERNET,
            fault_plan=FaultPlan(FaultSpec(seed=6, network_error=0.25)),
            retry_attempts=5)
        items = [(b"s%03d" % i, b"v" * (40 + i)) for i in range(24)]
        server.multiput(items)
        assert server.multiget([k for k, _ in items]) == \
            [v for _, v in items]
        assert sum(r.stats.retries for r in server.retries) > 0

    def test_read_any_and_delete_through_server(self):
        rdb = ReplicatedShardedBlobDB(n_groups=2, n_replicas=2, quorum=2,
                                      config=small_config())
        server = ReplicatedBlobServer(rdb, TCP_ETHERNET)
        server.put(b"k", b"v" * 30)
        rdb.drain()
        assert server.read_any(b"k") == b"v" * 30
        server.delete(b"k")
        assert not rdb.exists(b"k")

    def test_makespan_advances_router_clock_only_once(self):
        rdb = ReplicatedShardedBlobDB(n_groups=2, n_replicas=2, quorum=2,
                                      config=small_config())
        server = ReplicatedBlobServer(rdb, TCP_ETHERNET)
        before = rdb.model.clock.now_ns
        # Heavy enough sub-batches that per-group work dwarfs the
        # router's fixed fan-out/dispatch charges.
        server.multiput([(b"key%03d" % i, bytes([i]) * 4096)
                         for i in range(16)])
        advance = rdb.model.clock.now_ns - before
        deltas = [g.model.clock.now_ns for g in rdb.groups]
        # Router pays the slowest group plus fan-out/dispatch charges,
        # never the sum over groups.
        assert advance < sum(deltas)
        assert advance >= max(deltas)

    def test_transport_count_must_match_groups(self):
        rdb = ReplicatedShardedBlobDB(n_groups=2, config=small_config())
        with pytest.raises(ValueError, match="transport"):
            ReplicatedBlobServer(rdb, [TCP_ETHERNET])


class TestBenchReplication:
    def test_storm_reproducible_and_lossless(self):
        from repro.bench.baseline import run_replication_storm

        a = run_replication_storm(n_schedules=6, base_seed=400)
        b = run_replication_storm(n_schedules=6, base_seed=400)
        assert a == b  # same seed -> byte-identical document
        assert a["lost_acked_writes"] == 0
        assert a["torn_records"] == 0
        assert a["failovers"] >= 6
        assert a["rejoins"] == 6
        different = run_replication_storm(n_schedules=6, base_seed=500)
        assert different["digest"] != a["digest"]
