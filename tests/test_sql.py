"""Tests for the SQL front end (the paper's own statement forms)."""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.sql import SqlError, SqlSession


@pytest.fixture
def session():
    db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                             catalog_pages=256, buffer_pool_pages=4096))
    return SqlSession(db)


def classify(content: bytes) -> str:
    return "cat" if b"meow" in content else "other"


class TestCreateTable:
    def test_paper_listing(self, session):
        """The exact statement from Section III-E."""
        session.execute(
            "CREATE TABLE image (filename VARCHAR PRIMARY KEY, "
            "content BLOB)")
        assert "image" in session.db.list_tables()

    def test_text_key_type(self, session):
        session.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v BLOB)")
        assert "t" in session.db.list_tables()

    def test_bad_schema_rejected(self, session):
        with pytest.raises(SqlError):
            session.execute("CREATE TABLE t (a INT, b BLOB)")


class TestInsertSelect:
    @pytest.fixture
    def loaded(self, session):
        session.execute("CREATE TABLE image (filename VARCHAR PRIMARY KEY, "
                        "content BLOB)")
        session.execute("INSERT INTO image VALUES ('cat.jpg', X'ff d8'"
                        .replace(" d8", "d8") + ")")
        session.execute("INSERT INTO image VALUES ('note.txt', 'meow text')")
        return session

    def test_select_star(self, loaded):
        rows = loaded.execute("SELECT * FROM image")
        assert (b"cat.jpg", b"\xff\xd8") in rows
        assert (b"note.txt", b"meow text") in rows

    def test_select_by_key(self, loaded):
        rows = loaded.execute(
            "SELECT content FROM image WHERE filename = 'note.txt'")
        assert rows == [(b"meow text",)]

    def test_select_missing_key(self, loaded):
        assert loaded.execute(
            "SELECT * FROM image WHERE filename = 'nope'") == []

    def test_select_projection(self, loaded):
        rows = loaded.execute("SELECT filename FROM image")
        assert sorted(rows) == [(b"cat.jpg",), (b"note.txt",)]

    def test_hex_literals(self, loaded):
        rows = loaded.execute(
            "SELECT filename FROM image WHERE content = X'ffd8'")
        assert rows == [(b"cat.jpg",)]

    def test_quoted_quote(self, session):
        session.execute("CREATE TABLE t (k VARCHAR PRIMARY KEY, v BLOB)")
        session.execute("INSERT INTO t VALUES ('it''s', 'val')")
        assert session.execute("SELECT v FROM t WHERE k = 'it''s'") == \
            [(b"val",)]

    def test_unknown_table(self, session):
        with pytest.raises(SqlError):
            session.execute("SELECT * FROM ghosts")

    def test_trailing_garbage_rejected(self, loaded):
        with pytest.raises(SqlError):
            loaded.execute("SELECT * FROM image garbage here")


class TestDeleteUpdate:
    @pytest.fixture
    def loaded(self, session):
        session.execute("CREATE TABLE t (k VARCHAR PRIMARY KEY, v BLOB)")
        session.execute("INSERT INTO t VALUES ('a', 'one')")
        return session

    def test_delete(self, loaded):
        loaded.execute("DELETE FROM t WHERE k = 'a'")
        assert loaded.execute("SELECT * FROM t") == []

    def test_delete_missing_is_noop(self, loaded):
        loaded.execute("DELETE FROM t WHERE k = 'zzz'")
        assert len(loaded.execute("SELECT * FROM t")) == 1

    def test_update_replaces_blob(self, loaded):
        loaded.execute("UPDATE t SET v = 'two' WHERE k = 'a'")
        assert loaded.execute("SELECT v FROM t WHERE k = 'a'") == [(b"two",)]


class TestContentIndex:
    def test_content_equality_uses_index(self, session):
        session.execute("CREATE TABLE docs (name VARCHAR PRIMARY KEY, "
                        "body BLOB)")
        for i in range(20):
            session.execute(
                f"INSERT INTO docs VALUES ('d{i}', 'document {i} body')")
        session.execute("CREATE INDEX by_content ON docs (body)")
        rows = session.execute(
            "SELECT name FROM docs WHERE body = 'document 7 body'")
        assert rows == [(b"d7",)]

    def test_content_equality_without_index_falls_back(self, session):
        session.execute("CREATE TABLE docs (name VARCHAR PRIMARY KEY, "
                        "body BLOB)")
        session.execute("INSERT INTO docs VALUES ('d', 'needle')")
        rows = session.execute("SELECT name FROM docs WHERE body = 'needle'")
        assert rows == [(b"d",)]

    def test_index_maintained_by_dml(self, session):
        session.execute("CREATE TABLE docs (name VARCHAR PRIMARY KEY, "
                        "body BLOB)")
        session.execute("CREATE INDEX by_content ON docs (body)")
        session.execute("INSERT INTO docs VALUES ('d', 'late insert')")
        assert session.execute(
            "SELECT name FROM docs WHERE body = 'late insert'") == [(b"d",)]
        session.execute("DELETE FROM docs WHERE name = 'd'")
        assert session.execute(
            "SELECT name FROM docs WHERE body = 'late insert'") == []


class TestSemanticIndex:
    def test_paper_listing_iii_f(self, session):
        """CREATE UDF / CREATE INDEX / SELECT — the Section III-F flow."""
        session.register_udf("classify", classify)
        session.execute("CREATE TABLE image (filename VARCHAR PRIMARY KEY, "
                        "content BLOB)")
        session.execute("INSERT INTO image VALUES ('1.jpg', 'meow meow')")
        session.execute("INSERT INTO image VALUES ('2.jpg', 'woof woof')")
        session.execute("INSERT INTO image VALUES ('3.jpg', 'meow!')")
        session.execute("CREATE UDF classify(blob) -> TEXT")
        session.execute("CREATE INDEX foo ON image (classify(content))")
        rows = session.execute(
            "SELECT * FROM image WHERE classify(content) = 'cat'")
        names = sorted(r[0] for r in rows)
        assert names == [b"1.jpg", b"3.jpg"]

    def test_udf_projection(self, session):
        session.register_udf("classify", classify)
        session.execute("CREATE TABLE image (f VARCHAR PRIMARY KEY, "
                        "content BLOB)")
        session.execute("INSERT INTO image VALUES ('x', 'meow')")
        rows = session.execute("SELECT f, classify FROM image")
        assert rows == [(b"x", "cat")]

    def test_udf_without_implementation_rejected(self, session):
        with pytest.raises(SqlError):
            session.execute("CREATE UDF mystery(blob) -> TEXT")

    def test_semantic_predicate_requires_index(self, session):
        session.register_udf("classify", classify)
        session.execute("CREATE TABLE image (f VARCHAR PRIMARY KEY, "
                        "content BLOB)")
        session.execute("CREATE UDF classify(blob) -> TEXT")
        with pytest.raises(SqlError):
            session.execute(
                "SELECT * FROM image WHERE classify(content) = 'cat'")


class TestTokenizer:
    def test_garbage_rejected(self, session):
        with pytest.raises(SqlError):
            session.execute("SELECT @@@ FROM t")

    def test_empty_statement(self, session):
        with pytest.raises(SqlError):
            session.execute("   ")

    def test_unsupported_statement(self, session):
        with pytest.raises(SqlError):
            session.execute("DROP TABLE t")
