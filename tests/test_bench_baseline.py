"""Tests for the deterministic bench baseline suite and regression gate."""

import copy
import json

import pytest

from repro.bench import baseline


@pytest.fixture(scope="module")
def suite_doc():
    return baseline.run_suite("test")


class TestSuite:
    def test_runs_all_workloads(self, suite_doc):
        assert set(suite_doc["workloads"]) == \
            {"ycsb_4k", "ycsb_100k", "wikipedia",
             "iodepth_qd1", "iodepth_qd4", "iodepth_qd16", "iodepth_qd64",
             "shards_s1", "shards_s2", "shards_s4", "shards_s8",
             "shards_s8_zipf99",
             "replication_q1", "replication_q2", "replication_q3",
             "pmem_wal_nvme_w0us", "pmem_wal_pmem_w0us",
             "pmem_wal_nvme_w20us", "pmem_wal_pmem_w20us",
             "pmem_wal_nvme_w80us", "pmem_wal_pmem_w80us",
             "stripe_k1", "stripe_k2", "stripe_k4",
             "traffic_closed", "traffic_x025", "traffic_x10",
             "traffic_x20", "traffic_x40",
             "traffic_admit_shed", "traffic_admit_queue",
             "index_btree_uniform", "index_art_uniform",
             "index_learned_uniform",
             "index_btree_zipf99", "index_art_zipf99",
             "index_learned_zipf99",
             "ns_scan_gitclone", "ns_scan_wikipedia"}
        assert suite_doc["suite_version"] == baseline.SUITE_VERSION

    def test_workload_shape(self, suite_doc):
        for name, wl in suite_doc["workloads"].items():
            assert wl["ops"] > 0, name
            assert wl["throughput_ops_s"] > 0, name
            assert wl["latency_us"]["p50"] <= wl["latency_us"]["p99"] \
                <= wl["latency_us"]["max"], name
            if name.startswith("index_"):
                # Bare-index crossover points: no device below the
                # tree, so write amplification is pinned to zero.
                assert wl["engine"] in ("btree", "art", "learned"), name
                assert wl["entries"] > 0, name
                assert wl["write_amplification"] == 0.0, name
                continue
            if name.startswith("ns_scan_"):
                assert wl["listings_match"], name
                assert wl["speedup"] >= 1.0, name
                assert wl["range_scans"] >= 2, name
                assert wl["write_amplification"] == 0.0, name
                continue
            assert wl["write_amplification"] > 0, name
            assert wl["payload_bytes"] > 0, name
            if name.startswith("iodepth_"):
                assert wl["queue_depth"] >= 1, name
                continue
            if name.startswith("shards_"):
                assert wl["n_shards"] >= 1, name
                assert sum(wl["shard"]["keys_per_shard"]) == \
                    wl["shard"]["routed_keys"], name
                continue
            if name.startswith("replication_"):
                assert wl["quorum"] >= 1, name
                assert wl["replication"]["acked_writes"] > 0, name
                assert wl["replication"]["records_shipped"] > 0, name
                continue
            if name.startswith("pmem_wal_"):
                assert wl["wal_on"] in ("nvme", "pmem"), name
                assert wl["wal"]["records"] > 0, name
                continue
            if name.startswith("stripe_"):
                assert wl["n_devices"] >= 1, name
                assert wl["io"]["requests_in"] > 0, name
                continue
            if name.startswith("traffic_"):
                assert wl["offered"] == wl["admitted"] + wl["shed"], name
                assert wl["completed"] == wl["ops"], name
                assert wl["latency_us"]["p99"] <= \
                    wl["latency_us"]["p999"], name
                continue
            # Category accounting must include the data and WAL streams.
            cats = wl["bytes_written_by_category"]
            assert cats.get("data", 0) > 0 and cats.get("wal", 0) > 0, name

    def test_byte_identical_rendering(self, suite_doc):
        again = baseline.run_suite("test")
        assert baseline.render(suite_doc) == baseline.render(again)

    def test_render_round_trips(self, suite_doc, tmp_path):
        path = tmp_path / "BENCH_x.json"
        baseline.write_baseline(str(path), suite_doc)
        assert baseline.load_baseline(str(path)) == suite_doc
        json.loads(path.read_text())  # valid JSON on disk

    def test_format_report_mentions_workloads(self, suite_doc):
        text = baseline.format_report(suite_doc)
        assert "ycsb_4k" in text and "wikipedia" in text


class TestGate:
    def test_identical_run_passes(self, suite_doc):
        regressions, notes = baseline.compare(suite_doc, suite_doc)
        assert regressions == []
        assert notes == []

    def test_throughput_regression_detected(self, suite_doc):
        worse = copy.deepcopy(suite_doc)
        wl = worse["workloads"]["ycsb_4k"]
        wl["throughput_ops_s"] *= 0.8  # 20 % slower
        regressions, _ = baseline.compare(suite_doc, worse)
        assert len(regressions) == 1
        assert "throughput" in regressions[0]
        assert "ycsb_4k" in regressions[0]

    def test_p99_and_wa_regressions_detected(self, suite_doc):
        worse = copy.deepcopy(suite_doc)
        worse["workloads"]["wikipedia"]["latency_us"]["p99"] *= 1.5
        worse["workloads"]["ycsb_100k"]["write_amplification"] *= 1.2
        regressions, _ = baseline.compare(suite_doc, worse)
        assert any("p99" in r for r in regressions)
        assert any("write amplification" in r for r in regressions)

    def test_within_tolerance_passes(self, suite_doc):
        slightly = copy.deepcopy(suite_doc)
        slightly["workloads"]["ycsb_4k"]["throughput_ops_s"] *= 0.95
        regressions, _ = baseline.compare(suite_doc, slightly)
        assert regressions == []

    def test_improvement_is_a_note_not_a_failure(self, suite_doc):
        better = copy.deepcopy(suite_doc)
        better["workloads"]["ycsb_4k"]["throughput_ops_s"] *= 1.5
        regressions, notes = baseline.compare(suite_doc, better)
        assert regressions == []
        assert any("improvement" in n for n in notes)

    def test_missing_workload_fails(self, suite_doc):
        partial = copy.deepcopy(suite_doc)
        del partial["workloads"]["wikipedia"]
        regressions, _ = baseline.compare(suite_doc, partial)
        assert any("missing" in r for r in regressions)

    def test_suite_version_mismatch_fails(self, suite_doc):
        old = copy.deepcopy(suite_doc)
        old["suite_version"] = baseline.SUITE_VERSION + 1
        regressions, _ = baseline.compare(old, suite_doc)
        assert any("version mismatch" in r for r in regressions)

    def test_committed_baseline_matches_current_code(self):
        """The repo's BENCH_seed.json must gate-pass a fresh run.

        This is the CI contract: a perf-affecting change must refresh
        benchmarks/BENCH_seed.json in the same PR.
        """
        import pathlib
        path = (pathlib.Path(__file__).resolve().parent.parent
                / "benchmarks" / "BENCH_seed.json")
        committed = baseline.load_baseline(str(path))
        current = baseline.run_suite("seed")
        regressions, _ = baseline.compare(committed, current)
        assert regressions == []
        # Stronger than the gate: the workload numbers are bit-identical.
        assert committed["workloads"] == current["workloads"]
