"""Tests for the disk-resident learned index tier (``repro.lindex``)."""

import random

import pytest

from repro import obs
from repro.btree import BTree
from repro.db import BlobDB, EngineConfig
from repro.db.config import INDEX_ENGINES
from repro.lindex import LearnedIndex
from repro.sim.cost import CostModel


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class TestLearnedIndexDifferential:
    """The learned index agrees with a B-Tree on a random op stream."""

    def test_matches_btree_over_mixed_ops(self):
        model = CostModel()
        learned = LearnedIndex(model=model, epsilon=32, delta_max=16)
        oracle = BTree(node_bytes=4096, model=CostModel(),
                       key_size=lambda k: len(k))
        live: set[bytes] = set()
        rng = random.Random(5)
        for _ in range(4000):
            roll = rng.random()
            key = b"key%08d" % rng.randrange(600)
            if roll < 0.55:
                value = b"v%d" % rng.randrange(1 << 30)
                learned.insert(key, value)
                oracle.insert(key, value)
                live.add(key)
            elif roll < 0.75:
                assert learned.delete(key) == (key in live)
                oracle.delete(key)
                live.discard(key)
            elif roll < 0.9:
                assert learned.lookup(key) == oracle.lookup(key)
            else:
                lo = b"key%08d" % rng.randrange(600)
                hi = b"key%08d" % rng.randrange(600)
                if lo > hi:
                    lo, hi = hi, lo
                assert list(learned.scan(lo, hi)) == \
                    list(oracle.scan(lo, hi))
        assert len(learned) == len(oracle) == len(live)
        assert learned.first() == oracle.first()
        assert list(learned.scan(None, None)) == \
            list(oracle.scan(None, None))
        assert learned.check_invariants() == []

    def test_empty_out_and_reinsert(self):
        learned = LearnedIndex(model=CostModel())
        for i in range(100):
            learned.insert(b"%04d" % i, b"x")
        for i in range(100):
            assert learned.delete(b"%04d" % i)
        assert len(learned) == 0
        assert learned.first() is None
        assert list(learned.scan(None, None)) == []
        learned.insert(b"again", b"y")
        assert learned.lookup(b"again") == b"y"
        assert learned.check_invariants() == []

    def test_overwrite_replaces_in_place(self):
        learned = LearnedIndex(model=CostModel())
        learned.insert(b"k", b"v1")
        learned.insert(b"k", b"v2")
        assert learned.lookup(b"k") == b"v2"
        assert len(learned) == 1


class TestLearnedIndexStructure:
    def test_retrains_fire_and_stats_count(self):
        learned = LearnedIndex(model=CostModel(), epsilon=16, delta_max=8)
        rng = random.Random(9)
        for i in rng.sample(range(3000), 3000):
            learned.insert(b"%012d" % i, b"v")
        stats = learned.stats()
        assert stats.entry_count == 3000
        assert stats.segment_count >= 1
        assert stats.retrain_count > 0
        assert stats.probe_count == 0  # inserts are not probes
        assert learned.check_invariants() == []

    def test_segment_error_bounded(self):
        learned = LearnedIndex(model=CostModel(), epsilon=16, delta_max=8)
        for i in range(2000):
            learned.insert(b"%012d" % (i * 7), b"v")
        stats = learned.stats()
        # Actual per-segment error never exceeds the configured bound.
        assert stats.max_segment_error <= 16
        assert learned.check_invariants() == []

    def test_probe_and_delta_counters(self):
        learned = LearnedIndex(model=CostModel(), delta_max=64)
        for i in range(50):
            learned.insert(b"%06d" % i, b"v")
        before = learned.probes
        for i in range(50):
            assert learned.lookup(b"%06d" % i) is not None
        assert learned.probes == before + 50
        # Fresh inserts sit in the delta buffer until retrain; looking
        # one up is a delta hit.
        learned.insert(b"%06d" % 999999, b"fresh")
        hits = learned.delta_hits
        assert learned.lookup(b"%06d" % 999999) == b"fresh"
        assert learned.delta_hits >= hits

    def test_cost_model_charges_virtual_time(self):
        model = CostModel()
        learned = LearnedIndex(model=model)
        t0 = model.clock.now_ns
        for i in range(500):
            learned.insert(b"%08d" % i, b"v")
        t1 = model.clock.now_ns
        assert t1 > t0, "inserts must charge the cost model"
        for i in range(500):
            learned.lookup(b"%08d" % i)
        assert model.clock.now_ns > t1, "probes must charge the cost model"

    def test_retrain_charges_io_time(self):
        model = CostModel()
        learned = LearnedIndex(model=model, epsilon=16, delta_max=8)
        for i in range(1000):
            learned.insert(b"%08d" % i, b"v")
        assert learned.retrains > 0
        assert model.io_time_ns > 0, "retrains price bytes moved as I/O"

    def test_obs_counters_emitted(self):
        model = CostModel()
        tracer = obs.attach(model)
        learned = LearnedIndex(model=model, epsilon=16, delta_max=8)
        for i in range(1000):
            learned.insert(b"%08d" % i, b"v")
        for i in range(100):
            learned.lookup(b"%08d" % i)
        counters = tracer.metrics.counters
        assert counters["index.probes"].total() == 100
        assert counters["index.segment_retrains"].total() == \
            learned.retrains > 0


class TestEngineRegistry:
    def test_registry_lists_all_three(self):
        assert INDEX_ENGINES == ("btree", "art", "learned")

    def test_config_accepts_every_registered_engine(self):
        for engine in INDEX_ENGINES:
            assert small_config(index_structure=engine) is not None

    def test_config_rejects_unknown_engine_naming_registry(self):
        with pytest.raises(ValueError, match="btree.*art.*learned"):
            small_config(index_structure="skiplist")

    def test_config_rejects_bad_lindex_knobs(self):
        with pytest.raises(ValueError):
            small_config(lindex_epsilon=0)
        with pytest.raises(ValueError):
            small_config(lindex_delta_max=0)


class TestLearnedEngineInBlobDB:
    def test_blob_roundtrip_and_crash_recovery(self):
        db = BlobDB(small_config(index_structure="learned"))
        db.create_table("t")
        payloads = {b"obj/%06d" % i: bytes([i % 256]) * (100 + i)
                    for i in range(120)}
        for lo in range(0, 120, 30):
            with db.transaction() as txn:
                for key in list(payloads)[lo:lo + 30]:
                    db.put_blob(txn, "t", key, payloads[key])
        with db.transaction() as txn:
            for key in list(payloads)[:20]:
                db.delete_blob(txn, "t", key)
                del payloads[key]
        for key, expect in payloads.items():
            assert db.read_blob("t", key) == expect
        device = db.crash()
        db2 = BlobDB.recover(device, small_config(index_structure="learned"))
        assert db2.table_size("t") == len(payloads)
        for key, expect in payloads.items():
            assert db2.read_blob("t", key) == expect

    def test_stats_report_shows_learned_line(self):
        db = BlobDB(small_config(index_structure="learned"))
        db.create_table("t")
        with db.transaction() as txn:
            for i in range(40):
                db.put(txn, "t", b"row%04d" % i, b"v")
        for i in range(40):
            assert db.get("t", b"row%04d" % i) == b"v"
        report = db.stats_report()
        assert report.index_structure == "learned"
        assert report.index_entries >= 40
        assert report.index_probes > 0
        text = report.format()
        assert "index:          learned" in text

    def test_btree_report_carries_no_learned_noise(self):
        db = BlobDB(small_config())
        db.create_table("t")
        report = db.stats_report()
        assert report.index_structure == "btree"
        assert report.index_segments == 0
        assert "index:" not in report.format()
