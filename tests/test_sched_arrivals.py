"""Tests for the open-loop arrival generators."""

import random

import pytest

from repro.sched.arrivals import (
    DiurnalCurve,
    diurnal_arrivals,
    generate_jobs,
    op_for,
    poisson_arrivals,
)


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = poisson_arrivals(1e6, 200, random.Random(11))
        b = poisson_arrivals(1e6, 200, random.Random(11))
        c = poisson_arrivals(1e6, 200, random.Random(12))
        assert a == b
        assert a != c

    def test_mean_gap_matches_rate(self):
        """At rate R the mean inter-arrival gap is ~1e9/R ns."""
        times = poisson_arrivals(1e6, 4000, random.Random(3))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1000.0, rel=0.1)

    def test_times_are_monotone_ints(self):
        times = poisson_arrivals(5e5, 100, random.Random(7), start_ns=500)
        assert all(isinstance(t, int) for t in times)
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times[0] >= 500

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 10, random.Random(0))
        with pytest.raises(ValueError):
            poisson_arrivals(1e6, -1, random.Random(0))


class TestDiurnal:
    def test_curve_shape(self):
        curve = DiurnalCurve(base_ops_s=1000.0, amplitude=0.5,
                             period_ns=1_000_000)
        assert curve.peak_ops_s == 1500.0
        assert curve.rate_at(0) == pytest.approx(1000.0)
        # Quarter period: sin peak.
        assert curve.rate_at(250_000) == pytest.approx(1500.0)
        # Three-quarter period: trough, still positive.
        assert curve.rate_at(750_000) == pytest.approx(500.0)

    def test_thinning_is_deterministic(self):
        curve = DiurnalCurve(base_ops_s=1e6, amplitude=0.8)
        a = diurnal_arrivals(curve, 300, random.Random(5))
        b = diurnal_arrivals(curve, 300, random.Random(5))
        assert a == b

    def test_peak_vs_trough_density(self):
        """More arrivals land in the peak half-period than the trough."""
        period = 10_000_000
        curve = DiurnalCurve(base_ops_s=1e6, amplitude=0.9,
                             period_ns=period)
        times = diurnal_arrivals(curve, 5000, random.Random(9))
        peak = sum(1 for t in times if (t % period) < period // 2)
        trough = len(times) - peak
        assert peak > 2 * trough

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalCurve(base_ops_s=0.0)
        with pytest.raises(ValueError):
            DiurnalCurve(base_ops_s=1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalCurve(base_ops_s=1.0, period_ns=0)


class TestOpContent:
    def test_pure_function_of_tenant_and_index(self):
        """Op k's bytes cannot depend on what happened to ops < k."""
        kw = dict(seed=4, n_keys=32, payload_bytes=256, read_ratio=0.5)
        first = [op_for(1, i, **kw) for i in range(50)]
        # Regenerate in a different order, interleaved with other tenants.
        second = [op_for(1, i, **kw) for i in reversed(range(50))]
        _ = [op_for(2, i, **kw) for i in range(10)]
        assert first == list(reversed(second))

    def test_write_payload_sized_and_stamped(self):
        kind, key, payload = next(
            (op_for(0, i, seed=1, n_keys=4, payload_bytes=128,
                    read_ratio=0.0) for i in range(5)))
        assert kind == "write"
        assert len(payload) == 128
        assert payload.startswith(b"t00/")

    def test_read_ratio_extremes(self):
        reads = [op_for(0, i, seed=2, n_keys=8, payload_bytes=64,
                        read_ratio=1.0)[0] for i in range(20)]
        writes = [op_for(0, i, seed=2, n_keys=8, payload_bytes=64,
                         read_ratio=0.0)[0] for i in range(20)]
        assert set(reads) == {"read"}
        assert set(writes) == {"write"}


class TestGenerateJobs:
    def test_merged_schedule_is_deterministic_and_sorted(self):
        kw = dict(tenants=3, per_tenant=40, rate_ops_s=1e6, seed=8,
                  n_keys=16, payload_bytes=512, read_ratio=0.5)
        a = generate_jobs(**kw)
        b = generate_jobs(**kw)
        assert a == b
        assert len(a) == 120
        order = [(j.arrive_ns, j.tenant, j.index) for j in a]
        assert order == sorted(order)

    def test_tenant_streams_are_independent(self):
        """Adding a tenant never perturbs existing tenants' schedules."""
        kw = dict(per_tenant=30, rate_ops_s=1e6, seed=8, n_keys=16,
                  payload_bytes=512, read_ratio=0.5)
        two = [j for j in generate_jobs(tenants=2, **kw) if j.tenant == 0]
        three = [j for j in generate_jobs(tenants=3, **kw)
                 if j.tenant == 0]
        assert two == three

    def test_diurnal_curve_layering(self):
        curve = DiurnalCurve(base_ops_s=1e6, amplitude=0.5)
        jobs = generate_jobs(tenants=1, per_tenant=50, rate_ops_s=1e6,
                             seed=3, n_keys=8, payload_bytes=256,
                             read_ratio=0.5, curve=curve)
        flat = generate_jobs(tenants=1, per_tenant=50, rate_ops_s=1e6,
                             seed=3, n_keys=8, payload_bytes=256,
                             read_ratio=0.5)
        assert len(jobs) == 50
        assert [j.arrive_ns for j in jobs] != [j.arrive_ns for j in flat]
        # Op content is arrival-process independent: same (tenant, index)
        # pairs produce the same kind/key/payload either way.
        assert [(j.kind, j.key, j.payload) for j in jobs] \
            == [(f.kind, f.key, f.payload) for f in flat]
