"""Deliberately buggy (and fixed) code used as lint/detector fixtures."""
