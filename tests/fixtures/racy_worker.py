"""Planted concurrency bugs (and their fixes) for the analysis stack.

Each pair here is a positive/negative control: the buggy variant must
trip the static rules (RPR007/RPR008) *and* the runtime happens-before
detector; the guarded variant must pass both.  ``tests/
test_analysis_race.py`` runs the linter over this file's source and the
coroutines on a real :class:`~repro.sched.loop.EventLoop`.

This module is intentionally unguarded shared-state code — it is never
imported by the engine, only by tests.
"""

from __future__ import annotations

from repro.sched.loop import Acquire, Delay, Io, Release

#: The shared state every racy coroutine stomps on.
COUNTER = {"n": 0}


def racy_increment(race, delay_ns: int = 10):
    """BUG: bumps a module-level counter with no Resource guard.

    Two instances of this coroutine resume independently after their
    delays; the read-modify-write below has no happens-before edge
    between them.  RPR007 flags the mutation statically; the attached
    detector reports the write/write pair at runtime.
    """
    yield Delay(delay_ns)
    race.on_read(("fixture", "counter"))
    COUNTER["n"] = COUNTER["n"] + 1
    race.on_write(("fixture", "counter"))


def guarded_increment(lock, race, delay_ns: int = 10):
    """FIX: the same bump inside an Acquire/Release window."""
    yield Delay(delay_ns)
    yield Acquire(lock)
    race.on_read(("fixture", "counter"))
    COUNTER["n"] = COUNTER["n"] + 1
    race.on_write(("fixture", "counter"))
    yield Release(lock)


def latch_across_yield(lock, device, scratch):
    """BUG: suspends on Delay and Io while still holding the lock.

    The critical section spans the whole simulated wait: every other
    contender convoys behind it.  RPR008 flags both yields.
    """
    yield Acquire(lock)
    scratch["v"] = 1  # guarded — RPR007 must NOT fire here
    yield Delay(50)
    yield Io(device, 100)
    yield Release(lock)


def latch_released_before_yield(lock, device, scratch):
    """FIX: the lock is dropped before any suspending yield."""
    yield Acquire(lock)
    scratch["v"] = 1
    yield Release(lock)
    yield Delay(50)
    yield Io(device, 100)


def pinned_across_delay(pool):
    """BUG: holds pinned frames across a Delay suspension (RPR008)."""
    frames = pool.fetch_extents([(0, 1)], pin=True)
    yield Delay(50)
    pool.unpin(frames)


def pin_dropped_before_delay(pool):
    """FIX: unpins before suspending."""
    frames = pool.fetch_extents([(0, 1)], pin=True)
    pool.unpin(frames)
    yield Delay(50)
