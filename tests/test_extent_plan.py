"""Tests for extent-sequence planning and tail extents (Section III-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.extent import (
    AllocationPlan,
    Extent,
    TailExtent,
    extent_page_ranges,
    plan_create,
    plan_growth,
)
from repro.core.tier import ExtentTier, PowerOfTwoTier


@pytest.fixture
def tiers():
    return ExtentTier(tiers_per_level=10)


class TestExtentValidation:
    def test_valid_extent(self):
        e = Extent(pid=4, npages=2, tier_index=1)
        assert (e.pid, e.npages, e.tier_index) == (4, 2, 1)

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            Extent(pid=-1, npages=1, tier_index=0)
        with pytest.raises(ValueError):
            Extent(pid=0, npages=0, tier_index=0)

    def test_invalid_tail_rejected(self):
        with pytest.raises(ValueError):
            TailExtent(pid=0, npages=0)


class TestPlanCreate:
    def test_paper_figure1_normal(self, tiers):
        """A 6-page BLOB without tail takes tiers 0,1,2 (1+2+4 = 7 pages)."""
        plan = plan_create(6, tiers)
        assert plan.tier_indices == (0, 1, 2)
        assert plan.tail_pages == 0
        assert plan.capacity_pages(tiers) == 7  # one wasted page

    def test_paper_figure1_with_tail(self, tiers):
        """A 6-page BLOB with tail takes tiers 0,1 plus a 3-page tail."""
        plan = plan_create(6, tiers, use_tail=True)
        assert plan.tier_indices == (0, 1)
        assert plan.tail_pages == 3
        assert plan.capacity_pages(tiers) == 6  # zero waste

    def test_single_page(self, tiers):
        plan = plan_create(1, tiers)
        assert plan.tier_indices == (0,)

    def test_single_page_with_tail(self, tiers):
        """One page fits no full leading tier: the whole BLOB is the tail."""
        plan = plan_create(1, tiers, use_tail=True)
        assert plan.tier_indices == ()
        assert plan.tail_pages == 1

    def test_exact_capacity_fit_without_tail(self, tiers):
        plan = plan_create(7, tiers)  # 1+2+4 exactly
        assert plan.tier_indices == (0, 1, 2)
        assert plan.capacity_pages(tiers) == 7

    def test_exact_fit_with_tail_still_exact(self, tiers):
        plan = plan_create(7, tiers, use_tail=True)
        assert plan.capacity_pages(tiers) == 7

    def test_rejects_nonpositive(self, tiers):
        with pytest.raises(ValueError):
            plan_create(0, tiers)

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=80, deadline=None)
    def test_tail_plan_has_zero_waste(self, npages):
        tiers = ExtentTier(tiers_per_level=6)
        plan = plan_create(npages, tiers, use_tail=True)
        assert plan.capacity_pages(tiers) == npages

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=80, deadline=None)
    def test_normal_plan_covers_and_is_minimal(self, npages):
        tiers = ExtentTier(tiers_per_level=6)
        plan = plan_create(npages, tiers)
        cap = plan.capacity_pages(tiers)
        assert cap >= npages
        if len(plan.tier_indices) > 1:
            assert cap - tiers.size(plan.tier_indices[-1]) < npages


class TestPlanGrowth:
    def test_paper_figure3(self, tiers):
        """Growing a 2-page BLOB (tiers 0,1; capacity 3) by 4 pages.

        The paper's example appends one tier-2 extent (4 pages), reaching
        capacity 7 >= 6 total pages.
        """
        plan = plan_growth(current_extents=2, current_capacity=3,
                           new_total_pages=6, tiers=tiers)
        assert plan.tier_indices == (2,)
        assert plan.tail_pages == 0

    def test_growth_within_capacity_allocates_nothing(self, tiers):
        plan = plan_growth(3, 7, 7, tiers)
        assert plan.tier_indices == ()

    def test_growth_spanning_multiple_tiers(self, tiers):
        plan = plan_growth(0, 0, 100, tiers)
        assert plan.tier_indices == tuple(range(tiers.tiers_for_pages(100)))

    @given(st.integers(min_value=0, max_value=12),
           st.integers(min_value=1, max_value=10**5))
    @settings(max_examples=60, deadline=None)
    def test_growth_reaches_target(self, current_extents, extra):
        tiers = ExtentTier(tiers_per_level=6)
        capacity = tiers.cumulative(current_extents)
        target = capacity + extra
        plan = plan_growth(current_extents, capacity, target, tiers)
        assert capacity + sum(tiers.size(i) for i in plan.tier_indices) >= target
        # Growth continues the sequence: tier indices are consecutive.
        assert plan.tier_indices == tuple(
            range(current_extents, current_extents + len(plan.tier_indices)))


class TestPageRanges:
    def test_ranges_from_head_pids(self):
        tiers = PowerOfTwoTier()
        ranges = extent_page_ranges([100, 200, 300], tiers)
        assert ranges == [(100, 1), (200, 2), (300, 4)]

    def test_ranges_include_tail(self):
        tiers = PowerOfTwoTier()
        ranges = extent_page_ranges([10], tiers, TailExtent(pid=50, npages=3))
        assert ranges == [(10, 1), (50, 3)]

    def test_plan_capacity_with_tail(self):
        tiers = PowerOfTwoTier()
        plan = AllocationPlan(tier_indices=(0, 1), tail_pages=5)
        assert plan.capacity_pages(tiers) == 8
