"""Determinism and scaling tests for the sharded engine.

The contract under test: shard assignment is a pure function of the key
bytes, every shard runs on its own clock, cross-shard batches are priced
as the makespan over shards, and two identical runs are *identical* —
same assignment, same per-shard device traffic, same makespan.
"""

import pytest

from repro.db.config import EngineConfig
from repro.db.errors import KeyNotFoundError
from repro.db.stats import EngineReport
from repro.shard import ShardedBlobDB, ShardRouter
from repro.sim.cost import CostModel, CostParams
from repro.sim.workers import WorkerSim


def small_config(**overrides):
    return EngineConfig(device_pages=16384, wal_pages=512,
                        catalog_pages=128, buffer_pool_pages=4096,
                        **overrides)


def keyset(n, prefix=b"user"):
    return [prefix + b"%010d" % i for i in range(n)]


class TestRouter:
    def test_assignment_is_a_pure_function_of_key_bytes(self):
        a = ShardRouter(8, CostModel())
        b = ShardRouter(8, CostModel())
        keys = keyset(200)
        assert [a.shard_of(k) for k in keys] == \
            [b.shard_of(k) for k in keys]

    def test_all_shards_receive_keys(self):
        router = ShardRouter(4, CostModel())
        for key in keyset(100):
            router.shard_of(key)
        assert all(n > 0 for n in router.stats.per_shard_keys)
        assert sum(router.stats.per_shard_keys) == 100

    def test_routing_charges_the_model(self):
        model = CostModel()
        router = ShardRouter(4, model)
        router.shard_of(b"some key")
        assert model.clock.now_ns > 0

    def test_partition_preserves_batch_positions(self):
        router = ShardRouter(4, CostModel())
        keys = keyset(32)
        parts = router.partition(keys)
        flat = sorted((pos, key) for sub in parts.values()
                      for pos, key in sub)
        assert flat == list(enumerate(keys))

    def test_single_shard_imbalance_is_guarded(self):
        router = ShardRouter(1, CostModel())
        for key in keyset(10):
            router.shard_of(key)
        assert router.stats.imbalance() == 0.0

    def test_zero_keys_imbalance_is_guarded(self):
        assert ShardRouter(4, CostModel()).stats.imbalance() == 0.0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0, CostModel())


class TestShardedBlobDB:
    def test_single_key_roundtrip(self):
        sdb = ShardedBlobDB(n_shards=4, config=small_config())
        sdb.put(b"k", b"v" * 5000)
        assert sdb.get(b"k") == b"v" * 5000
        assert sdb.stat(b"k") == 5000
        assert sdb.exists(b"k")
        sdb.delete(b"k")
        assert not sdb.exists(b"k")
        with pytest.raises(KeyNotFoundError):
            sdb.get(b"k")

    def test_multiget_returns_request_order(self):
        sdb = ShardedBlobDB(n_shards=4, config=small_config())
        keys = keyset(24)
        sdb.multiput([(k, bytes([i]) * 512) for i, k in enumerate(keys)])
        got = sdb.multiget(list(reversed(keys)))
        for i, data in enumerate(reversed(got)):
            assert data == bytes([i]) * 512

    def test_multiput_is_replace(self):
        sdb = ShardedBlobDB(n_shards=2, config=small_config())
        sdb.multiput([(b"k", b"old" * 100)])
        sdb.multiput([(b"k", b"new" * 50)])
        assert sdb.get(b"k") == b"new" * 50

    def test_multiput_duplicate_key_last_writer_wins(self):
        sdb = ShardedBlobDB(n_shards=2, config=small_config())
        sdb.multiput([(b"dup", b"a" * 64), (b"x", b"y" * 64),
                      (b"dup", b"b" * 64)])
        assert sdb.get(b"dup") == b"b" * 64

    def test_scan_merges_shards_in_key_order(self):
        sdb = ShardedBlobDB(n_shards=4, config=small_config())
        keys = keyset(40)
        sdb.multiput([(k, b"p" * 128) for k in keys])
        rows = sdb.scan()
        assert [k for k, _ in rows] == sorted(keys)

    def test_batch_latency_is_makespan_not_sum(self):
        """The router clock advances by the slowest shard's sub-batch,
        strictly less than the serial sum of all sub-batches."""
        sdb = ShardedBlobDB(n_shards=4, config=small_config())
        keys = keyset(64)
        before = [s.model.clock.now_ns for s in sdb.shards]
        start = sdb.model.clock.now_ns
        sdb.multiput([(k, b"d" * 2048) for k in keys])
        observed = sdb.model.clock.now_ns - start
        per_shard = [s.model.clock.now_ns - b
                     for s, b in zip(sdb.shards, before)]
        assert observed < sum(per_shard)
        assert observed >= max(per_shard)

    def test_more_shards_shrink_the_makespan(self):
        keys = keyset(64)
        makespans = []
        for n in (1, 4):
            sdb = ShardedBlobDB(n_shards=n, config=small_config())
            sdb.multiput([(k, b"p" * 1024) for k in keys])
            start = sdb.model.clock.now_ns
            sdb.multiget(keys)
            makespans.append(sdb.model.clock.now_ns - start)
        assert makespans[1] < makespans[0]


def run_workload(n_shards=4, seed_keys=48):
    """One pinned workload; returns (sdb, makespan_ns)."""
    sdb = ShardedBlobDB(n_shards=n_shards, config=small_config())
    keys = keyset(seed_keys)
    start = sdb.model.clock.now_ns
    sdb.multiput([(k, bytes([i % 251]) * 1024)
                  for i, k in enumerate(keys)])
    sdb.multiget(keys)
    sdb.multiput([(k, bytes([(i + 1) % 251]) * 1024)
                  for i, k in enumerate(keys[::2])])
    sdb.drain_commit_window()
    return sdb, sdb.model.clock.now_ns - start


class TestDeterminism:
    """Same seed + same key set => identical everything, twice."""

    def test_identical_assignment_device_stats_and_makespan(self):
        first, makespan_a = run_workload()
        second, makespan_b = run_workload()
        # Identical shard assignment.
        assert first.router.stats.per_shard_keys == \
            second.router.stats.per_shard_keys
        # Identical per-shard DeviceStats (every counter, per category).
        for shard_a, shard_b in zip(first.shards, second.shards):
            assert shard_a.device.stats == shard_b.device.stats
        # Identical makespan on the router clock.
        assert makespan_a == makespan_b
        # And identical per-shard clocks.
        assert [s.model.clock.now_ns for s in first.shards] == \
            [s.model.clock.now_ns for s in second.shards]

    def test_report_is_identical_across_runs(self):
        first, _ = run_workload()
        second, _ = run_workload()
        assert first.stats_report() == second.stats_report()


class TestRecovery:
    def test_data_survives_crash_recover(self):
        sdb, _ = run_workload()
        expected = {k: sdb.get(k) for k in keyset(48)}
        devices = sdb.crash()
        recovered = ShardedBlobDB.recover(devices, small_config())
        for key, data in expected.items():
            assert recovered.get(key) == data

    def test_recovery_is_priced_as_makespan(self):
        sdb, _ = run_workload()
        devices = sdb.crash()
        recovered = ShardedBlobDB.recover(devices, small_config())
        assert recovered.recovery_makespan_ns > 0
        assert recovered.recovery_makespan_ns < \
            recovered.recovery_serial_ns

    def test_recovery_speedup_is_near_linear(self):
        """4 shards with balanced data recover in well under half the
        serial replay time."""
        sdb, _ = run_workload(n_shards=4, seed_keys=64)
        devices = sdb.crash()
        recovered = ShardedBlobDB.recover(devices, small_config())
        speedup = recovered.recovery_serial_ns / \
            recovered.recovery_makespan_ns
        assert speedup > 2.0

    def test_recovery_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            sdb, _ = run_workload()
            recovered = ShardedBlobDB.recover(sdb.crash(), small_config())
            outcomes.append((recovered.recovery_makespan_ns,
                             recovered.recovery_serial_ns))
        assert outcomes[0] == outcomes[1]


class TestShardReport:
    def test_single_shard_report_has_no_imbalance(self):
        """One-shard reports must not divide by the shard count or
        invent an imbalance ratio (the N=1 guard)."""
        sdb = ShardedBlobDB(n_shards=1, config=small_config())
        sdb.put(b"k", b"v" * 256)
        report = sdb.stats_report()
        assert report.shard_count == 1
        assert report.shard_imbalance == 0.0
        assert "shards:" not in report.format()

    def test_unsharded_report_is_all_zero(self):
        report = EngineReport()
        assert report.shard_count == 0
        assert report.shard_imbalance == 0.0
        assert "shards:" not in report.format()

    def test_empty_multi_shard_report_has_no_division_error(self):
        sdb = ShardedBlobDB(n_shards=4, config=small_config())
        report = sdb.stats_report()  # zero routed keys
        assert report.shard_imbalance == 0.0
        report.format()  # must not raise

    def test_multi_shard_report_shows_balance_line(self):
        sdb, _ = run_workload()
        report = sdb.stats_report()
        assert report.shard_count == 4
        assert report.shard_imbalance >= 1.0
        assert sum(report.shard_keys_per_shard) == \
            report.shard_routed_keys
        assert "shards:" in report.format()

    def test_aggregates_sum_per_shard_counters(self):
        sdb, _ = run_workload()
        report = sdb.stats_report()
        assert report.wal_records == \
            sum(r.wal_records for r in sdb.shard_reports())
        assert report.device_bytes_read == \
            sum(r.device_bytes_read for r in sdb.shard_reports())


class TestWorkerSimSharded:
    @staticmethod
    def io_op(model, i):
        model.ssd_read(16384, requests=4)
        model.memcpy(4096)

    @staticmethod
    def mem_op(model, i):
        model.memcpy(1 << 20)

    def test_throughput_monotone_in_shards_for_io_bound_ops(self):
        sim = WorkerSim(16)
        tps = [sim.run(self.io_op, 40, working_set_bytes=16384,
                       n_shards=n).throughput_ops_s
               for n in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(tps, tps[1:]))
        assert tps[-1] > 3.0 * tps[0]

    def test_memory_bound_ops_gain_nothing_from_shards(self):
        """DRAM bandwidth and L3 do not shard: where shards stop
        helping (Section V-E)."""
        sim = WorkerSim(16)
        one = sim.run(self.mem_op, 16, working_set_bytes=1 << 21,
                      n_shards=1)
        eight = sim.run(self.mem_op, 16, working_set_bytes=1 << 21,
                        n_shards=8)
        assert eight.throughput_ops_s == \
            pytest.approx(one.throughput_ops_s, rel=0.01)

    def test_legacy_mode_is_unchanged(self):
        sim = WorkerSim(8)
        legacy = sim.run(self.io_op, 40, working_set_bytes=16384)
        assert legacy.n_shards is None
        assert legacy.device_factor == 1.0
        sharded_wide = sim.run(self.io_op, 40, working_set_bytes=16384,
                               n_shards=8)
        # One shard per worker = no queueing = the legacy assumption.
        assert sharded_wide.per_op_ns == pytest.approx(legacy.per_op_ns)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            WorkerSim(4).run(self.io_op, 4, n_shards=0)


class TestCostParams:
    def test_shard_params_are_overridable(self):
        params = CostParams().copy(shard_route_ns=500.0,
                                   shard_fanout_ns=2000.0,
                                   rpc_dispatch_ns=100.0)
        cheap = CostModel(CostParams().copy(shard_route_ns=1.0))
        dear = CostModel(params)
        cheap.shard_route(8)
        dear.shard_route(8)
        assert dear.clock.now_ns > cheap.clock.now_ns

    def test_fanout_charge_scales_with_shard_count(self):
        model = CostModel()
        model.shard_fanout(1)
        one = model.clock.now_ns
        model.shard_fanout(8)
        assert model.clock.now_ns - one == pytest.approx(8 * one)
