"""Hypothesis stateful testing of the BLOB life-cycle.

A rule-based state machine drives one engine through arbitrary
interleavings of put/append/update/delete/read/checkpoint/crash against
a per-key bytes shadow.  Hypothesis shrinks any failure to a minimal
operation sequence — the sharpest tool for edge cases like zero-byte
BLOBs, exact page-boundary sizes, and updates at extent seams.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.db import BlobDB, EngineConfig

KEYS = [b"alpha", b"beta", b"gamma"]

#: Sizes chosen to sit on interesting boundaries: empty, sub-page, exact
#: page, exact tier-capacity (7 pages), spanning, large.
SIZES = st.sampled_from([0, 1, 100, 4095, 4096, 4097, 8192,
                         7 * 4096, 7 * 4096 + 1, 60_000])


def config():
    return EngineConfig(device_pages=32768, wal_pages=2048,
                        catalog_pages=512, buffer_pool_pages=8192)


class BlobLifecycle(RuleBasedStateMachine):
    keys = Bundle("keys")

    @initialize()
    def setup(self):
        self.config = config()
        self.db = BlobDB(self.config)
        self.db.create_table("t")
        self.shadow: dict[bytes, bytes] = {}
        self.fill = 0

    @rule(target=keys, key=st.sampled_from(KEYS))
    def pick_key(self, key):
        return key

    @rule(key=keys, size=SIZES, byte=st.integers(0, 255),
          use_tail=st.booleans())
    def put(self, key, size, byte, use_tail):
        data = bytes([byte]) * size
        with self.db.transaction() as txn:
            if key in self.shadow:
                self.db.delete_blob(txn, "t", key)
            self.db.put_blob(txn, "t", key, data, use_tail=use_tail)
        self.shadow[key] = data

    @rule(key=keys, size=st.sampled_from([1, 100, 4096, 20_000]),
          byte=st.integers(0, 255))
    def append(self, key, size, byte):
        if key not in self.shadow:
            return
        extra = bytes([byte]) * size
        with self.db.transaction() as txn:
            self.db.append_blob(txn, "t", key, extra)
        self.shadow[key] += extra

    @rule(key=keys, offset_frac=st.floats(0, 1), size=st.sampled_from([1, 64, 5000]),
          scheme=st.sampled_from(["delta", "clone", "auto"]))
    def update(self, key, offset_frac, size, scheme):
        current = self.shadow.get(key)
        if not current:
            return
        offset = int(offset_frac * (len(current) - 1))
        size = min(size, len(current) - offset)
        if size <= 0:
            return
        patch = b"\xee" * size
        with self.db.transaction() as txn:
            self.db.update_blob_range(txn, "t", key, offset, patch,
                                      scheme=scheme)
        self.shadow[key] = (current[:offset] + patch
                            + current[offset + size:])

    @rule(key=keys)
    def delete(self, key):
        if key not in self.shadow:
            return
        with self.db.transaction() as txn:
            self.db.delete_blob(txn, "t", key)
        del self.shadow[key]

    @rule(key=keys, size=SIZES, byte=st.integers(0, 255))
    def aborted_put(self, key, size, byte):
        if key in self.shadow:
            return
        txn = self.db.begin()
        self.db.put_blob(txn, "t", key, bytes([byte]) * size)
        self.db.abort(txn)

    @rule()
    def checkpoint(self):
        self.db.checkpoint()

    @rule()
    def crash_and_recover(self):
        self.db = BlobDB.recover(self.db.crash(), self.config)
        assert self.db.failed_txns == []

    @rule(key=keys, offset=st.integers(0, 70_000),
          length=st.integers(0, 10_000))
    def range_read(self, key, offset, length):
        if key not in self.shadow:
            return
        expected = self.shadow[key][offset:offset + length]
        assert self.db.read_blob_range("t", key, offset, length) == expected

    @invariant()
    def contents_match_shadow(self):
        if not hasattr(self, "db"):
            return
        live = {k for k, _ in self.db.scan("t")}
        assert live == set(self.shadow)
        for key, expected in self.shadow.items():
            assert self.db.read_blob("t", key) == expected

    @invariant()
    def no_leaked_locks_or_txns(self):
        if not hasattr(self, "db"):
            return
        assert len(self.db.locks) == 0
        assert len(self.db._active) == 0


BlobLifecycleTest = BlobLifecycle.TestCase
BlobLifecycleTest.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
