"""Deep-tree FUSE tests for the interval-numbered namespace.

Satellite of the adaptive-indexing PR: trees at least six levels deep,
readdir/getattr correct at every depth with and without the
accelerator, and unlink/mkdir-style churn keeping the interval
numbering consistent across crash/recovery.
"""

import errno

import pytest

from repro.db import BlobDB, EngineConfig
from repro.fuse.vfs import BlobFuse, FuseError
from repro.namespace import NamespaceIndex


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


#: A seven-component key: /tree/a/b/c/d/e/f/leaf.bin is 8 path levels.
DEEP_KEYS = [
    b"a/b/c/d/e/f/leaf%02d.bin" % i for i in range(4)
] + [
    b"a/b/c/d/e/other.txt",
    b"a/b/side/x/y/z/w/deepest.dat",
    b"a/top.txt",
    b"root.txt",
]


def deep_fs(attach=True, engine="btree"):
    db = BlobDB(small_config(index_structure=engine))
    db.create_table("tree")
    with db.transaction() as txn:
        for i, key in enumerate(DEEP_KEYS):
            db.put(txn, "tree", key, b"#" * (i + 1))
    fs = BlobFuse(db)
    if attach:
        fs.attach_namespace()
    return fs


class TestDeepTreeLookups:
    @pytest.mark.parametrize("attach", [False, True],
                             ids=["baseline", "interval"])
    def test_getattr_at_every_depth(self, attach):
        fs = deep_fs(attach)
        # Every ancestor directory of the deepest file...
        parts = "a/b/c/d/e/f".split("/")
        for depth in range(1, len(parts) + 1):
            path = "/tree/" + "/".join(parts[:depth])
            attr = fs.getattr(path)
            assert attr.is_dir, path
        # ...and the files at assorted depths.
        attr = fs.getattr("/tree/a/b/c/d/e/f/leaf00.bin")
        assert not attr.is_dir and attr.st_size == 1
        attr = fs.getattr("/tree/a/b/side/x/y/z/w/deepest.dat")
        assert not attr.is_dir and attr.st_size == 6
        assert fs.getattr("/tree/root.txt").st_size == 8

    @pytest.mark.parametrize("attach", [False, True],
                             ids=["baseline", "interval"])
    def test_readdir_at_every_depth(self, attach):
        fs = deep_fs(attach)
        assert fs.readdir("/tree") == [".", "..", "a", "root.txt"]
        assert fs.readdir("/tree/a") == [".", "..", "b", "top.txt"]
        assert fs.readdir("/tree/a/b/c/d/e") == \
            [".", "..", "f", "other.txt"]
        assert fs.readdir("/tree/a/b/c/d/e/f") == \
            [".", "..", "leaf00.bin", "leaf01.bin", "leaf02.bin",
             "leaf03.bin"]
        assert fs.readdir("/tree/a/b/side/x/y/z/w") == \
            [".", "..", "deepest.dat"]

    @pytest.mark.parametrize("attach", [False, True],
                             ids=["baseline", "interval"])
    def test_enoent_and_enotdir_at_depth(self, attach):
        fs = deep_fs(attach)
        with pytest.raises(FuseError) as e:
            fs.getattr("/tree/a/b/c/d/e/f/missing.bin")
        assert e.value.errno == errno.ENOENT
        with pytest.raises(FuseError) as e:
            fs.readdir("/tree/a/b/c/d/e/f/leaf00.bin")
        assert e.value.errno == errno.ENOTDIR
        with pytest.raises(FuseError) as e:
            fs.readdir("/tree/a/b/nope")
        assert e.value.errno == errno.ENOENT

    def test_recursive_listing_matches_baseline(self):
        baseline = deep_fs(attach=False)
        interval = deep_fs(attach=True)
        for path in ("/tree", "/tree/a", "/tree/a/b/c", "/tree/a/b/side"):
            assert interval.readdir_recursive(path) == \
                baseline.readdir_recursive(path), path
            assert interval.subtree_statfs(path) == \
                baseline.subtree_statfs(path), path

    def test_subtree_statfs_sums(self):
        fs = deep_fs(attach=True)
        totals = fs.subtree_statfs("/tree")
        assert totals["files"] == len(DEEP_KEYS)
        assert totals["bytes"] == sum(range(1, len(DEEP_KEYS) + 1))
        # Directories on the a/b/c/d/e/f spine, the side branch, and a.
        deep = fs.subtree_statfs("/tree/a/b/side")
        assert deep == {"files": 1, "dirs": 4, "bytes": 6}

    def test_learned_engine_serves_the_same_tree(self):
        btree = deep_fs(attach=True, engine="btree")
        learned = deep_fs(attach=True, engine="learned")
        assert learned.readdir_recursive("/tree") == \
            btree.readdir_recursive("/tree")
        assert learned.subtree_statfs("/tree") == \
            btree.subtree_statfs("/tree")


class TestChurnAndRecovery:
    def test_unlink_mkdir_churn_stays_consistent(self):
        fs = deep_fs(attach=True)
        db = fs.db
        # Unlink-style churn: delete two leaves (one empties its chain
        # of directories), then mkdir-style churn: grow a new branch
        # past the six-level mark, all through committed transactions.
        with db.transaction() as txn:
            db.delete(txn, "tree", b"a/b/side/x/y/z/w/deepest.dat")
            db.delete(txn, "tree", b"a/b/c/d/e/f/leaf03.bin")
        with db.transaction() as txn:
            for i in range(40):
                db.put(txn, "tree", b"new/n1/n2/n3/n4/n5/file%03d" % i,
                       b"+" * 3)
        assert db.ns.verify() == []
        # The emptied side branch is pruned...
        with pytest.raises(FuseError):
            fs.getattr("/tree/a/b/side")
        # ...the surviving siblings are intact...
        assert fs.readdir("/tree/a/b/c/d/e/f") == \
            [".", "..", "leaf00.bin", "leaf01.bin", "leaf02.bin"]
        # ...and the new deep branch lists at every level.
        assert len(fs.readdir("/tree/new/n1/n2/n3/n4/n5")) == 42
        # Strict descendants of new/: the five nested dirs n1..n5.
        totals = fs.subtree_statfs("/tree/new")
        assert totals == {"files": 40, "dirs": 5, "bytes": 120}
        # The accelerated listing still matches a from-scratch walk.
        fresh = NamespaceIndex(db)
        root = fresh.resolve("tree")
        want = sorted(f.key for f in fresh.iter_subtree(root) if f.is_file)
        got = sorted(f.key for f in db.ns.iter_subtree(
            db.ns.resolve("tree")) if f.is_file)
        assert got == want

    def test_churn_survives_crash_recovery(self):
        fs = deep_fs(attach=True)
        db = fs.db
        with db.transaction() as txn:
            db.delete(txn, "tree", b"root.txt")
            for i in range(50):  # forces interval renumbering too
                db.put(txn, "tree", b"burst/d/e/f/g/h/f%04d" % i, b"b")
        before = fs.readdir_recursive("/tree")
        assert db.ns.renumbers >= 0
        assert db.ns.verify() == []
        device = db.crash()
        assert db.ns is None
        db2 = BlobDB.recover(device, small_config())
        fs2 = BlobFuse(db2)
        fs2.attach_namespace()
        assert db2.ns.verify() == []
        assert fs2.readdir_recursive("/tree") == before
        with pytest.raises(FuseError) as e:
            fs2.getattr("/tree/root.txt")
        assert e.value.errno == errno.ENOENT

    def test_aborted_churn_invisible_at_depth(self):
        fs = deep_fs(attach=True)
        db = fs.db
        txn = db.begin()
        db.put(txn, "tree", b"ghost/1/2/3/4/5/6/spooky", b"boo")
        db.delete(txn, "tree", b"a/top.txt")
        db.abort(txn)
        with pytest.raises(FuseError):
            fs.getattr("/tree/ghost")
        assert fs.getattr("/tree/a/top.txt").st_size == 7
        assert db.ns.verify() == []
