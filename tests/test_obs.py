"""Tests for the repro.obs tracing/metrics subsystem and its exporters."""

import json

import pytest

from repro import obs
from repro.db import BlobDB, EngineConfig
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.clock import VirtualClock


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=128,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def traced_db():
    db = BlobDB(small_config())
    db.create_table("t")
    tracer = obs.attach(db.model)
    return db, tracer


def run_small_workload(db):
    with db.transaction() as txn:
        db.put_blob(txn, "t", b"a", b"x" * 200_000)
        db.put_blob(txn, "t", b"b", b"y" * 5_000)
    assert db.read_blob("t", b"a") == b"x" * 200_000
    with db.transaction() as txn:
        db.delete_blob(txn, "t", b"b")


class TestMetrics:
    def test_counter_labels_accumulate_separately(self):
        c = Counter("bytes")
        c.add(10, category="wal")
        c.add(5, category="data")
        c.add(7, category="wal")
        assert c.get(category="wal") == 17
        assert c.get(category="data") == 5
        assert c.get(category="meta") == 0
        assert c.total() == 22

    def test_counter_as_dict_is_sorted_and_stable(self):
        c = Counter("x")
        c.add(1, b="2", a="1")
        c.add(3)
        assert c.as_dict() == {"_": 3, "a=1,b=2": 1}

    def test_histogram_percentiles_are_deterministic(self):
        h = Histogram("lat")
        for v in [100, 200, 400, 800, 100_000]:
            h.observe(v)
        assert h.count == 5
        assert h.min == 100
        assert h.max == 100_000
        # p50 lands in the bucket holding the 3rd rank; clamped to data.
        assert h.percentile(0.5) == h.percentile(0.5)
        assert h.min <= h.percentile(0.5) <= h.max
        assert h.percentile(0.0) == h.min
        assert h.percentile(1.0) == h.max
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_histogram_empty_summary(self):
        s = Histogram("empty").summary()
        assert s["count"] == 0 and s["p99"] == 0
        assert s["p999"] == 0

    def test_histogram_p999_on_skewed_fill(self):
        """p999 resolves the far tail: a 1-in-1000 outlier must pull
        p999 beyond p99 (the tail the traffic simulator gates on)."""
        h = Histogram("tail")
        for _ in range(1000):
            h.observe(100)
        for _ in range(5):  # 0.5% tail mass: p999 sees it, p99 cannot
            h.observe(50_000_000)
        s = h.summary()
        assert set(s) >= {"p50", "p95", "p99", "p999"}
        assert s["p999"] >= s["p99"] >= s["p95"] >= s["p50"]
        assert s["p999"] > s["p99"]
        assert s["p999"] <= h.max

    def test_histogram_overflow_bucket(self):
        h = Histogram("big", bounds=(10, 100))
        h.observe(5)
        h.observe(1_000_000)
        assert h.overflow == 1
        assert h.percentile(1.0) == 1_000_000

    def test_registry_reuses_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")
        d = reg.as_dict()
        assert set(d) == {"counters", "histograms"}


class TestTracer:
    def make(self, **kw):
        clock = VirtualClock()
        return clock, Tracer(clock, **kw)

    def test_nested_spans_parent_child_time(self):
        clock, tr = self.make()
        tr.begin("outer")
        clock.advance(100)
        tr.begin("inner")
        clock.advance(40)
        tr.end()
        clock.advance(10)
        tr.end(tag="done")
        assert tr.depth == 0
        outer = [e for e in tr.events if e.name == "outer"][0]
        inner = [e for e in tr.events if e.name == "inner"][0]
        assert inner.path == "outer;inner"
        assert inner.dur_ns == 40
        assert outer.dur_ns == 150
        assert outer.self_ns == 110  # 150 total minus 40 traced child
        assert outer.args == {"tag": "done"}

    def test_span_context_manager_balances_on_error(self):
        clock, tr = self.make()
        with pytest.raises(RuntimeError):
            with tr.span("risky"):
                clock.advance(5)
                raise RuntimeError("boom")
        assert tr.depth == 0
        assert tr.events[0].dur_ns == 5

    def test_end_without_begin_raises(self):
        _, tr = self.make()
        with pytest.raises(RuntimeError):
            tr.end()

    def test_capture_off_feeds_histograms_only(self):
        clock, tr = self.make(capture=False)
        with tr.span("work"):
            clock.advance(1000)
        tr.instant("ping")
        assert tr.events == []
        assert tr.metrics.histogram("span.work").count == 1

    def test_max_events_drops_beyond_cap(self):
        _, tr = self.make(max_events=3)
        for _ in range(5):
            tr.instant("tick")
        assert len(tr.events) == 3
        assert tr.dropped_events == 2

    def test_span_totals_aggregates(self):
        clock, tr = self.make()
        for _ in range(3):
            with tr.span("op"):
                clock.advance(10)
        totals = tr.span_totals()
        assert totals["op"] == {"calls": 3, "total_ns": 30, "self_ns": 30}


class TestInstrumentedEngine:
    def test_nullable_tracer_default_off(self):
        db = BlobDB(small_config())
        assert db.model.obs is None  # fast path: no tracer allocated
        db.create_table("t")
        run_small_workload(db)  # must run fine uninstrumented

    def test_spans_cover_hot_layers(self):
        db, tracer = traced_db()
        run_small_workload(db)
        db.checkpoint()
        names = {e.name for e in tracer.events}
        assert {"txn.commit", "wal.append", "wal.flush", "device.submit",
                "db.put_blob", "db.read_blob", "db.delete_blob",
                "db.checkpoint"} <= names
        assert tracer.depth == 0  # every begin matched by an end
        counters = tracer.metrics.counters
        assert counters["txn.commits"].total() == 2
        assert counters["wal.records"].total() > 0
        assert counters["device.write_bytes"].get(category="wal") > 0
        assert counters["device.write_bytes"].get(category="data") > 0

    def test_alloc_and_pool_instrumentation(self):
        db, tracer = traced_db()
        run_small_workload(db)
        kinds = tracer.metrics.counters["alloc.extents"]
        assert kinds.total() == kinds.get(kind="fresh") + \
            kinds.get(kind="reused")
        assert kinds.total() > 0
        instants = [e for e in tracer.events if e.name == "alloc.extent"]
        assert instants and instants[0].dur_ns is None
        assert "tier" in instants[0].args

    def test_recovery_phases_traced(self):
        db, _ = traced_db()
        run_small_workload(db)
        db.checkpoint()
        device = db.crash()
        tracer = obs.attach(device.model)
        recovered = BlobDB.recover(device, db.config)
        assert recovered.read_blob("t", b"a") == b"x" * 200_000
        names = {e.name for e in tracer.events}
        assert {"recovery", "recovery.snapshot", "recovery.wal_scan",
                "recovery.analysis", "recovery.redo"} <= names
        recovery = [e for e in tracer.events if e.name == "recovery"][0]
        assert recovery.dur_ns >= 0
        assert tracer.depth == 0

    def test_spans_balanced_across_occ_abort(self):
        from repro.db.errors import TransactionConflict
        db, tracer = traced_db()
        with db.transaction() as t1:
            db.put_blob(t1, "t", b"k", b"v" * 100)
        txn_a = db.begin()
        txn_b = db.begin()
        db.delete_blob(txn_a, "t", b"k")
        db.put_blob(txn_a, "t", b"k", b"a" * 100)
        db.commit(txn_a)
        try:
            db.delete_blob(txn_b, "t", b"k")
            db.put_blob(txn_b, "t", b"k", b"b" * 100)
            db.commit(txn_b)
        except TransactionConflict:
            db.abort(txn_b)
        assert tracer.depth == 0


class TestExporters:
    def test_chrome_trace_is_valid_and_loadable_shape(self):
        db, tracer = traced_db()
        run_small_workload(db)
        doc = json.loads(obs.to_chrome_trace(tracer, label="unit"))
        assert doc["otherData"]["clock"] == "virtual-ns"
        assert doc["otherData"]["label"] == "unit"
        events = doc["traceEvents"]
        assert events
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert complete and all(
            {"name", "ts", "dur", "pid", "tid"} <= set(e) for e in complete)
        for e in instants:
            assert "dur" not in e
        assert "metrics" in doc

    def test_collapsed_stacks_nesting_and_sorted(self):
        db, tracer = traced_db()
        run_small_workload(db)
        lines = obs.to_collapsed_stacks(tracer).splitlines()
        assert lines == sorted(lines)
        paths = {line.rsplit(" ", 1)[0] for line in lines}
        assert any(p.startswith("txn.commit;wal.flush") for p in paths)
        for line in lines:
            assert int(line.rsplit(" ", 1)[1]) >= 0

    def test_byte_identical_across_runs(self):
        def one_run():
            db, tracer = traced_db()
            run_small_workload(db)
            db.checkpoint()
            return obs.to_chrome_trace(tracer, label="det")
        assert one_run() == one_run()

    def test_span_summary_formats(self):
        db, tracer = traced_db()
        run_small_workload(db)
        text = obs.format_span_summary(tracer)
        assert "txn.commit" in text and "calls" in text
