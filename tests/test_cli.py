"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICDE 2024" in out
        assert "vmcache" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "copies/byte" in out
        assert "our" in out and "mysql" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--payload-kb", "4", "--ops", "20",
                     "--records", "4"]) == 0
        out = capsys.readouterr().out
        assert "txn/s" in out
        assert "our" in out

    def test_faultsweep(self, capsys):
        assert main(["faultsweep", "--schedules", "10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "0 SILENT" in out
        assert "digest:" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestJsonOutput:
    def test_demo_json(self, capsys):
        assert main(["demo", "--json", "--payload-kb", "4", "--ops", "20",
                     "--records", "4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        systems = {row["system"] for row in doc["systems"]}
        assert "our" in systems
        for row in doc["systems"]:
            assert row["throughput_ops_s"] > 0

    def test_survey_json(self, capsys):
        assert main(["survey", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["copies_per_byte"]["our"] <= \
            doc["copies_per_byte"]["postgresql"]

    def test_faultsweep_json(self, capsys):
        assert main(["faultsweep", "--schedules", "5", "--seed", "3",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["silent"] == 0
        assert doc["n_schedules"] == 5
        assert len(doc["digest"]) == 64


class TestTraceCommand:
    def test_stdout_trace_is_valid_chrome_json(self, capsys):
        assert main(["trace", "ycsb", "--seed", "1", "--ops", "30"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["otherData"]["clock"] == "virtual-ns"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_trace_byte_identical_across_runs(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "ycsb", "--seed", "0", "--ops", "40",
                     "--out", str(a)]) == 0
        assert main(["trace", "ycsb", "--seed", "0", "--ops", "40",
                     "--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_trace_seed_changes_trace(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "ycsb", "--seed", "0", "--ops", "40",
                     "--out", str(a)]) == 0
        assert main(["trace", "ycsb", "--seed", "7", "--ops", "40",
                     "--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() != b.read_bytes()

    def test_flamegraph_and_summary(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        flame = tmp_path / "t.folded"
        assert main(["trace", "wikipedia", "--ops", "20",
                     "--out", str(out), "--flamegraph", str(flame),
                     "--summary"]) == 0
        err = capsys.readouterr().err
        assert "span" in err  # summary table went to stderr
        lines = flame.read_text().splitlines()
        assert lines and all(" " in line for line in lines)


class TestBenchCommand:
    def test_bench_writes_and_gates_against_itself(self, tmp_path, capsys):
        out = tmp_path / "BENCH_a.json"
        assert main(["bench", "--label", "a", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["label"] == "a"
        assert main(["bench", "--label", "b",
                     "--out", str(tmp_path / "BENCH_b.json"),
                     "--compare", str(out)]) == 0
        assert "regression gate OK" in capsys.readouterr().out

    def test_bench_gate_fails_on_regression(self, tmp_path, capsys):
        out = tmp_path / "BENCH_a.json"
        assert main(["bench", "--label", "a", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        for wl in doc["workloads"].values():
            wl["throughput_ops_s"] *= 2  # baseline far faster than now
        out.write_text(json.dumps(doc))
        assert main(["bench", "--label", "c",
                     "--out", str(tmp_path / "BENCH_c.json"),
                     "--compare", str(out)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
