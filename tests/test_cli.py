"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ICDE 2024" in out
        assert "vmcache" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "copies/byte" in out
        assert "our" in out and "mysql" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--payload-kb", "4", "--ops", "20",
                     "--records", "4"]) == 0
        out = capsys.readouterr().out
        assert "txn/s" in out
        assert "our" in out

    def test_faultsweep(self, capsys):
        assert main(["faultsweep", "--schedules", "10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "0 SILENT" in out
        assert "digest:" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
