"""Tests for the simulated file-system baselines."""

import pytest

from repro.baselines import Btrfs, Ext4, Ext4Journal, F2fs, FsError, Xfs
from repro.baselines.ext4 import extent_tree_depth
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe

ALL_FS = [Ext4, Ext4Journal, Xfs, Btrfs, F2fs]


def make_fs(cls, capacity_pages=65536):
    model = CostModel()
    device = SimulatedNVMe(model, capacity_pages=capacity_pages)
    return cls(model, device)


@pytest.mark.parametrize("fs_cls", ALL_FS, ids=lambda c: c.name)
class TestCommonSemantics:
    def test_create_write_read_roundtrip(self, fs_cls):
        fs = make_fs(fs_cls)
        payload = bytes(range(256)) * 64
        fd = fs.create("/a.bin")
        fs.pwrite(fd, payload, 0)
        assert fs.pread(fd, len(payload), 0) == payload
        fs.close(fd)

    def test_read_after_reopen(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.write_file("/f", b"persistent")
        assert fs.read_file("/f") == b"persistent"

    def test_pread_with_offset(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.write_file("/f", b"0123456789")
        fd = fs.open("/f")
        assert fs.pread(fd, 4, 3) == b"3456"
        fs.close(fd)

    def test_pread_past_eof(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.write_file("/f", b"short")
        fd = fs.open("/f")
        assert fs.pread(fd, 100, 3) == b"rt"
        assert fs.pread(fd, 10, 50) == b""
        fs.close(fd)

    def test_overwrite_in_place(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.write_file("/f", b"A" * 10000)
        fd = fs.open("/f")
        fs.pwrite(fd, b"B" * 100, 5000)
        content = fs.pread(fd, 10000, 0)
        fs.close(fd)
        assert content[5000:5100] == b"B" * 100
        assert content[:5000] == b"A" * 5000

    def test_fstat_size(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.write_file("/f", b"x" * 1234)
        fd = fs.open("/f")
        assert fs.fstat(fd).size == 1234
        fs.close(fd)

    def test_unlink_frees_space(self, fs_cls):
        fs = make_fs(fs_cls)
        before = fs.free.free_blocks
        fs.write_file("/f", b"x" * 100_000)
        assert fs.free.free_blocks < before
        fs.unlink("/f")
        assert fs.free.free_blocks == before
        assert not fs.exists("/f")

    def test_duplicate_create_fails(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.close(fs.create("/f"))
        with pytest.raises(FsError):
            fs.create("/f")

    def test_open_missing_fails(self, fs_cls):
        fs = make_fs(fs_cls)
        with pytest.raises(FsError):
            fs.open("/missing")

    def test_bad_fd_fails(self, fs_cls):
        fs = make_fs(fs_cls)
        with pytest.raises(FsError):
            fs.pread(99, 10, 0)

    def test_ftruncate_shrink_and_grow(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.write_file("/f", b"y" * 9000)
        fd = fs.open("/f")
        fs.ftruncate(fd, 100)
        assert fs.fstat(fd).size == 100
        fs.ftruncate(fd, 5000)
        content = fs.pread(fd, 5000, 0)
        fs.close(fd)
        assert content[:100] == b"y" * 100
        assert content[100:] == b"\x00" * 4900

    def test_cold_read_after_drop_caches(self, fs_cls):
        fs = make_fs(fs_cls)
        payload = b"cold" * 5000
        fs.write_file("/f", payload)
        fs.drop_caches()
        before = fs.device.stats.bytes_read
        assert fs.read_file("/f") == payload
        assert fs.device.stats.bytes_read - before >= len(payload)

    def test_no_space_raises(self, fs_cls):
        fs = make_fs(fs_cls, capacity_pages=64)
        with pytest.raises(FsError):
            fs.write_file("/big", b"x" * (300 * 4096))

    def test_listdir(self, fs_cls):
        fs = make_fs(fs_cls)
        fs.write_file("/b", b"1")
        fs.write_file("/a", b"2")
        assert fs.listdir() == ["/a", "/b"]


class TestExtentTreeDepth:
    def test_inline_extents_have_no_tree(self):
        assert extent_tree_depth(1) == 0
        assert extent_tree_depth(4) == 0

    def test_one_level(self):
        assert extent_tree_depth(5) == 1
        assert extent_tree_depth(340) == 1

    def test_two_levels(self):
        assert extent_tree_depth(341) == 2


class TestJournalModes:
    def test_data_journal_writes_data_to_journal_in_foreground(self):
        ordered = make_fs(Ext4)
        journal = make_fs(Ext4Journal)
        payload = b"j" * 100_000
        for fs in (ordered, journal):
            fs.write_file("/f", payload)
            fs.writeback()  # commits the pending journal transaction
        j_ordered = ordered.device.stats.bytes_written_by_category["journal"]
        j_journal = journal.device.stats.bytes_written_by_category["journal"]
        assert j_journal >= len(payload)          # data through the journal
        assert j_journal > j_ordered * 3
        assert journal.stats.foreground_journal_bytes >= len(payload)
        # And the foreground clock paid for it.
        assert journal.model.clock.now_ns > ordered.model.clock.now_ns

    def test_journal_mode_doubles_write_amplification(self):
        journal = make_fs(Ext4Journal)
        payload = b"d" * 200_000
        journal.write_file("/f", payload)
        journal.writeback()
        stats = journal.device.stats
        assert stats.bytes_written >= 2 * len(payload)


class TestCopyOnWrite:
    def test_btrfs_overwrite_relocates_blocks(self):
        fs = make_fs(Btrfs)
        fs.write_file("/f", b"v1" * 4096)
        file = fs._files["/f"]
        old_first = fs._phys_block(file, 0)
        fd = fs.open("/f")
        fs.pwrite(fd, b"v2" * 2048, 0)
        fs.close(fd)
        assert fs._phys_block(file, 0) != old_first
        assert fs.read_file("/f")[:4096] == b"v2" * 2048

    def test_ext4_overwrite_stays_in_place(self):
        fs = make_fs(Ext4)
        fs.write_file("/f", b"v1" * 4096)
        file = fs._files["/f"]
        old_first = fs._phys_block(file, 0)
        fd = fs.open("/f")
        fs.pwrite(fd, b"v2" * 2048, 0)
        fs.close(fd)
        assert fs._phys_block(file, 0) == old_first


class TestLogStructured:
    def test_f2fs_allocations_are_sequential(self):
        fs = make_fs(F2fs)
        fs.write_file("/a", b"1" * 40_000)
        fs.write_file("/b", b"2" * 40_000)
        a_start = fs._files["/a"].extents[0][0]
        b_start = fs._files["/b"].extents[0][0]
        assert b_start > a_start

    def test_f2fs_stays_contiguous_when_fragmented(self):
        """After churn, F2FS still appends; extent counts stay low."""
        fs = make_fs(F2fs, capacity_pages=4096)
        for i in range(30):
            fs.write_file(f"/f{i}", b"x" * 30_000)
            if i % 2:
                fs.unlink(f"/f{i}")
        fs.write_file("/final", b"y" * 30_000)
        assert len(fs._files["/final"].extents) <= 3


class TestFragmentation:
    def test_near_full_allocation_fragments(self):
        """Best-effort allocators split allocations when nearly full."""
        # Size the partition so the file set nearly fills it; freeing
        # every other file leaves only scattered same-sized holes.
        fs = make_fs(Ext4, capacity_pages=Ext4.journal_blocks + 6000)
        for i in range(120):
            fs.write_file(f"/f{i}", b"x" * 200_000)
        for i in range(0, 120, 2):
            fs.unlink(f"/f{i}")
        frags_before = fs.stats.alloc_fragments
        fs.write_file("/big", b"y" * 2_000_000)
        new_frags = fs.stats.alloc_fragments - frags_before
        assert new_frags > 5  # the big file landed in many holes

    def test_utilization(self):
        fs = make_fs(Ext4, capacity_pages=16384)
        assert fs.utilization() == pytest.approx(0.0)
        fs.write_file("/f", b"x" * (1000 * 4096))
        assert fs.utilization() > 0.1


class TestReadCeiling:
    def test_cold_reads_are_block_serial(self):
        """Readahead off: cold 4 KiB-block reads cap near 59 MB/s."""
        fs = make_fs(Ext4)
        payload = b"r" * (2 * 1024 * 1024)
        fs.write_file("/f", payload)
        fs.drop_caches()
        start = fs.model.clock.now_ns
        fs.read_file("/f")
        elapsed_s = (fs.model.clock.now_ns - start) / 1e9
        rate_mb_s = len(payload) / (1 << 20) / elapsed_s
        assert 30 < rate_mb_s < 90  # the paper measures 59 MB/s
