"""The fault-sweep acceptance gate: hundreds of seeded fault schedules
must complete with zero silent corruption, and the sweep must be
byte-reproducible from its seed (same seed, same stats digest)."""

from repro.bench.faultsweep import (
    run_fault_schedule,
    run_sweep,
    small_config,
)


class TestFaultSweep:
    def test_200_schedules_zero_silent_corruption(self):
        report = run_sweep(n_schedules=200, seed=0)
        assert report.n_schedules == 200
        assert report.silent == 0, report.format()
        # The sweep must actually exercise the machinery, not dodge it:
        # faults were injected and some schedules saw handled damage.
        assert sum(report.faults.values()) > 0
        assert report.io_retries > 0
        assert report.reported > 0

    def test_same_seed_reproduces_the_digest(self):
        a = run_sweep(n_schedules=40, seed=7)
        b = run_sweep(n_schedules=40, seed=7)
        assert a.digest == b.digest
        assert [r.counters_line() for r in a.schedules] == \
            [r.counters_line() for r in b.schedules]

    def test_different_seed_differs(self):
        a = run_sweep(n_schedules=20, seed=1)
        b = run_sweep(n_schedules=20, seed=2)
        assert a.digest != b.digest

    def test_single_schedule_is_deterministic(self):
        a = run_fault_schedule(11)
        b = run_fault_schedule(11)
        assert a.counters_line() == b.counters_line()

    def test_outcome_taxonomy(self):
        report = run_sweep(n_schedules=60, seed=100)
        assert report.clean + report.reported + report.silent == 60
        for res in report.schedules:
            assert res.outcome in ("clean", "reported")
            if res.outcome == "clean":
                assert res.reported_keys == 0
                assert res.workload_errors == 0
                assert res.recovery_error == ""

    def test_sweep_under_hashtable_pool(self):
        config = small_config(pool="hashtable")
        report = run_sweep(n_schedules=40, seed=0, config=config)
        assert report.silent == 0, report.format()

    def test_sweep_under_physlog(self):
        config = small_config(log_policy="physlog", wal_pages=256)
        report = run_sweep(n_schedules=40, seed=0, config=config)
        assert report.silent == 0, report.format()

    def test_transient_only_schedules_mostly_recover_clean(self):
        """With only retryable faults (no corruption), every schedule
        must end clean or cleanly-reported — and retries must fire."""
        report = run_sweep(n_schedules=40, seed=0,
                           rates={"transient_error": 0.15})
        assert report.silent == 0
        assert report.io_retries > 0
        assert report.wal_records_truncated == 0
        assert report.keys_quarantined == 0
