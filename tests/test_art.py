"""Tests for the Adaptive Radix Tree (paper ref [42])."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.art import ArtTree
from repro.sim.cost import CostModel


class TestBasicOperations:
    def test_empty_lookup(self):
        assert ArtTree().lookup(b"missing") is None

    def test_insert_lookup(self):
        tree = ArtTree()
        tree.insert(b"hello", 1)
        tree.insert(b"world", 2)
        assert tree.lookup(b"hello") == 1
        assert tree.lookup(b"world") == 2
        assert tree.lookup(b"hell") is None
        assert len(tree) == 2

    def test_replace(self):
        tree = ArtTree()
        tree.insert(b"k", "old")
        tree.insert(b"k", "new")
        assert tree.lookup(b"k") == "new"
        assert len(tree) == 1

    def test_key_prefix_of_another(self):
        """ART must handle a key being a strict prefix of another."""
        tree = ArtTree()
        tree.insert(b"app", 1)
        tree.insert(b"apple", 2)
        tree.insert(b"applesauce", 3)
        assert tree.lookup(b"app") == 1
        assert tree.lookup(b"apple") == 2
        assert tree.lookup(b"applesauce") == 3
        assert tree.lookup(b"appl") is None

    def test_empty_key(self):
        tree = ArtTree()
        tree.insert(b"", "root-value")
        tree.insert(b"x", 1)
        assert tree.lookup(b"") == "root-value"
        assert tree.lookup(b"x") == 1

    def test_none_value_storable(self):
        tree = ArtTree()
        tree.insert(b"k", None)
        assert b"k" in tree is False or tree.lookup(b"k") is None
        # `lookup` cannot distinguish; `scan` can.
        assert list(tree.scan()) == [(b"k", None)]

    def test_contains(self):
        tree = ArtTree()
        tree.insert(b"yes", 1)
        assert b"yes" in tree
        assert b"no" not in tree

    def test_many_random_keys(self):
        tree = ArtTree()
        rng = random.Random(4)
        items = {rng.randbytes(rng.randint(1, 24)): i for i in range(3000)}
        for k, v in items.items():
            tree.insert(k, v)
        assert len(tree) == len(items)
        for k, v in items.items():
            assert tree.lookup(k) == v


class TestDelete:
    def test_delete_present(self):
        tree = ArtTree()
        tree.insert(b"k", 1)
        assert tree.delete(b"k") is True
        assert tree.lookup(b"k") is None
        assert len(tree) == 0

    def test_delete_absent(self):
        tree = ArtTree()
        tree.insert(b"k", 1)
        assert tree.delete(b"other") is False
        assert len(tree) == 1

    def test_delete_prefix_key_keeps_longer(self):
        tree = ArtTree()
        tree.insert(b"app", 1)
        tree.insert(b"apple", 2)
        assert tree.delete(b"app")
        assert tree.lookup(b"app") is None
        assert tree.lookup(b"apple") == 2

    def test_delete_recompresses_paths(self):
        tree = ArtTree()
        tree.insert(b"abcdef", 1)
        tree.insert(b"abcxyz", 2)
        tree.delete(b"abcxyz")
        assert tree.lookup(b"abcdef") == 1
        stats = tree.stats()
        assert stats.node_count <= 2  # root + one compressed leaf

    def test_churn(self):
        tree = ArtTree()
        shadow = {}
        rng = random.Random(11)
        for _ in range(5000):
            key = b"k%03d" % rng.randrange(300)
            if rng.random() < 0.6:
                tree.insert(key, key)
                shadow[key] = key
            else:
                assert tree.delete(key) == (key in shadow)
                shadow.pop(key, None)
        assert len(tree) == len(shadow)
        for k, v in shadow.items():
            assert tree.lookup(k) == v


class TestScan:
    def test_scan_byte_order(self):
        tree = ArtTree()
        keys = [b"banana", b"apple", b"cherry", b"apricot", b"app"]
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.scan()] == sorted(keys)

    def test_range_scan(self):
        tree = ArtTree()
        for i in range(100):
            tree.insert(b"k%03d" % i, i)
        got = [v for _, v in tree.scan(start=b"k010", end=b"k020")]
        assert got == list(range(10, 20))

    def test_first(self):
        tree = ArtTree()
        assert tree.first() is None
        for k in (b"m", b"a", b"z"):
            tree.insert(k, k)
        assert tree.first() == (b"a", b"a")


class TestAdaptivity:
    def test_low_fanout_stays_node4(self):
        tree = ArtTree()
        tree.insert(b"aa", 1)
        tree.insert(b"ab", 2)
        stats = tree.stats()
        assert stats.node_types.get("Node4", 0) >= 1
        assert "Node256" not in stats.node_types

    def test_high_fanout_grows_to_node256(self):
        tree = ArtTree()
        for byte in range(256):
            tree.insert(bytes([byte]) + b"suffix", byte)
        stats = tree.stats()
        assert stats.node_types.get("Node256", 0) >= 1

    def test_dense_keys_compact(self):
        """Dense integer keys: ART stores them in few fat nodes."""
        dense = ArtTree()
        for i in range(4096):
            dense.insert(i.to_bytes(4, "big"), i)
        stats = dense.stats()
        # 4096 entries share the leading-byte paths: beyond one terminal
        # node per key, only a handful of fat inner nodes exist.
        inner_nodes = stats.node_count - stats.entry_count
        assert inner_nodes < 4096 / 8
        assert stats.height <= 5
        assert stats.size_bytes / stats.entry_count < 128  # bytes per key

    def test_path_compression_limits_height(self):
        tree = ArtTree()
        tree.insert(b"x" * 100 + b"a", 1)
        tree.insert(b"x" * 100 + b"b", 2)
        assert tree.stats().height <= 3  # not 100 levels

    def test_cost_model_charged(self):
        model = CostModel()
        tree = ArtTree(model=model)
        tree.insert(b"abc", 1)
        before = model.clock.now_ns
        tree.lookup(b"abc")
        assert model.clock.now_ns > before


class TestPropertyBased:
    @given(st.dictionaries(st.binary(min_size=0, max_size=16),
                           st.integers(), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict(self, items):
        tree = ArtTree()
        for k, v in items.items():
            tree.insert(k, v)
        assert len(tree) == len(items)
        for k, v in items.items():
            assert tree.lookup(k) == v
        assert [k for k, _ in tree.scan()] == sorted(items)

    @given(st.lists(st.binary(min_size=1, max_size=12), min_size=1,
                    max_size=100, unique=True), st.data())
    @settings(max_examples=60, deadline=None)
    def test_delete_subset(self, keys, data):
        tree = ArtTree()
        for k in keys:
            tree.insert(k, k)
        to_delete = data.draw(st.lists(st.sampled_from(keys), unique=True))
        for k in to_delete:
            assert tree.delete(k)
        remaining = set(keys) - set(to_delete)
        assert len(tree) == len(remaining)
        for k in remaining:
            assert tree.lookup(k) == k
        for k in to_delete:
            assert tree.lookup(k) is None
        assert [k for k, _ in tree.scan()] == sorted(remaining)
