"""Tests for the PostgreSQL / SQLite / MySQL baseline models."""

import pytest

from repro.baselines import MysqlBlobStore, PostgresBlobStore, SqliteBlobStore
from repro.baselines.sqlite import CHECKPOINT_PAGES
from repro.db.errors import BlobTooBigError, DuplicateKeyError, KeyNotFoundError
from repro.sim.cost import CostModel
from repro.storage.device import SimulatedNVMe

ALL_DBMS = [PostgresBlobStore, SqliteBlobStore, MysqlBlobStore]


def make_store(cls, **kwargs):
    model = CostModel()
    device = SimulatedNVMe(model, capacity_pages=1 << 20)
    return cls(model, device, **kwargs)


@pytest.mark.parametrize("cls", ALL_DBMS, ids=lambda c: c.name)
class TestCommonSemantics:
    def test_put_get_roundtrip(self, cls):
        store = make_store(cls)
        payload = bytes(range(256)) * 500
        store.put(b"k", payload)
        assert store.get(b"k") == payload

    def test_get_missing(self, cls):
        with pytest.raises(KeyNotFoundError):
            make_store(cls).get(b"nope")

    def test_duplicate_put(self, cls):
        store = make_store(cls)
        store.put(b"k", b"1")
        with pytest.raises(DuplicateKeyError):
            store.put(b"k", b"2")

    def test_delete(self, cls):
        store = make_store(cls)
        store.put(b"k", b"gone")
        store.delete(b"k")
        assert not store.exists(b"k")
        with pytest.raises(KeyNotFoundError):
            store.delete(b"k")

    def test_wal_receives_content_copy(self, cls):
        """Every baseline writes BLOBs at least twice (Section II)."""
        store = make_store(cls)
        payload = b"w" * 500_000
        store.put(b"k", payload)
        assert store.stats.wal_bytes >= len(payload) * 0.9


class TestSizeLimits:
    def test_postgres_statement_parameter_overflow_at_1gb(self):
        store = make_store(PostgresBlobStore)
        with pytest.raises(BlobTooBigError):
            store.put(b"k", b"\x00" * 10**9)

    def test_sqlite_blob_too_big_at_1gb(self):
        store = make_store(SqliteBlobStore)
        with pytest.raises(BlobTooBigError):
            store.put(b"k", b"\x00" * (10**9 + 1))

    def test_mysql_accepts_1gb(self):
        """LONGBLOB holds 4 GB: the 1 GB payload is allowed (just slow)."""
        store = make_store(MysqlBlobStore)
        assert store.max_blob_bytes >= 10**9


class TestClientServerOverhead:
    def test_server_engines_pay_ipc(self):
        remote = make_store(PostgresBlobStore)
        embedded = make_store(SqliteBlobStore)
        remote.put(b"k", b"x" * 120)
        embedded.put(b"k", b"x" * 120)
        assert remote.model.clock.now_ns > \
            embedded.model.clock.now_ns + remote.model.params.ipc_roundtrip_ns / 2

    def test_serialization_scales_with_payload(self):
        small = make_store(MysqlBlobStore)
        big = make_store(MysqlBlobStore)
        small.put(b"k", b"x" * 1000)
        big.put(b"k", b"x" * 1_000_000)
        assert big.model.clock.now_ns > 10 * small.model.clock.now_ns


class TestSqliteCheckpoints:
    def test_checkpoint_rate_matches_paper(self):
        """~2.5 checkpoints per 10 MB BLOB write (Section V-B)."""
        store = make_store(SqliteBlobStore)
        store.put(b"k", b"\x00" * (10 * 1024 * 1024))
        assert store.stats.checkpoints in (2, 3)

    def test_checkpoints_cost_foreground_time(self):
        quiet = make_store(SqliteBlobStore)
        noisy = make_store(SqliteBlobStore)
        small = CHECKPOINT_PAGES // 2 * 4088  # stays below the threshold
        quiet.put(b"k", b"\x00" * small)
        noisy.put(b"k", b"\x00" * (small * 8))  # several checkpoints
        assert noisy.stats.checkpoints >= 3
        per_byte_quiet = quiet.model.clock.now_ns / small
        per_byte_noisy = noisy.model.clock.now_ns / (small * 8)
        assert per_byte_noisy > per_byte_quiet

    def test_content_index_doubles_wal(self):
        plain = make_store(SqliteBlobStore)
        indexed = make_store(SqliteBlobStore, with_content_index=True)
        payload = b"i" * 200_000
        plain.put(b"k", payload)
        indexed.put(b"k", payload)
        assert indexed.stats.wal_bytes >= 1.9 * plain.stats.wal_bytes


class TestMysqlDoublewrite:
    def test_dwb_doubles_page_writes(self):
        store = make_store(MysqlBlobStore)
        payload = b"m" * 500_000
        store.put(b"k", payload)
        cats = store.device.stats.bytes_written_by_category
        assert cats["dwb"] >= len(payload) * 0.9
        assert cats["data"] >= len(payload) * 0.9
        assert cats["wal"] >= len(payload) * 0.9  # three copies total


class TestPostgresToast:
    def test_toast_index_entry_per_chunk(self):
        store = make_store(PostgresBlobStore)
        payload = b"t" * 19_960  # exactly 10 chunks of 1996 bytes
        store.put(b"k", payload)
        assert len(store._toast_index) == 10

    def test_delete_removes_chunks(self):
        store = make_store(PostgresBlobStore)
        store.put(b"k", b"t" * 19_960)
        store.delete(b"k")
        assert len(store._toast_index) == 0
