"""Tests for DROP TABLE semantics and bucket deletion."""

import pytest

from repro.db import BlobDB, EngineConfig, TableNotFoundError
from repro.db.errors import DatabaseError
from repro.objectstore import BucketNotFound, ObjectStore


def small_config(**overrides):
    defaults = dict(device_pages=16384, wal_pages=512, catalog_pages=256,
                    buffer_pool_pages=4096)
    defaults.update(overrides)
    return EngineConfig(**defaults)


class TestDropTable:
    def test_drop_removes_table(self):
        db = BlobDB(small_config())
        db.create_table("t")
        db.drop_table("t")
        assert db.list_tables() == []
        with pytest.raises(TableNotFoundError):
            db.get_state("t", b"k")

    def test_drop_frees_blob_space(self):
        db = BlobDB(small_config())
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"k", b"x" * 200_000)
        used = db.allocator.allocated_pages
        db.drop_table("t")
        assert db.allocator.allocated_pages < used

    def test_drop_missing_raises(self):
        db = BlobDB(small_config())
        with pytest.raises(TableNotFoundError):
            db.drop_table("ghost")
        with pytest.raises(TableNotFoundError):
            db.drop_table("\x00tables")

    def test_name_reusable_after_drop(self):
        db = BlobDB(small_config())
        db.create_table("t")
        with db.transaction() as txn:
            db.put_blob(txn, "t", b"old", b"v1")
        db.drop_table("t")
        db.create_table("t")
        assert not db.exists("t", b"old")

    def test_drop_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("keep")
        db.create_table("gone")
        with db.transaction() as txn:
            db.put_blob(txn, "keep", b"k", b"kept")
            db.put_blob(txn, "gone", b"g", b"dropped")
        db.drop_table("gone")
        recovered = BlobDB.recover(db.crash(), db.config)
        assert recovered.list_tables() == ["keep"]
        assert recovered.read_blob("keep", b"k") == b"kept"

    def test_drop_before_checkpoint_survives_crash(self):
        db = BlobDB(small_config())
        db.create_table("gone")
        db.checkpoint()
        db.drop_table("gone")   # only in the WAL tail
        recovered = BlobDB.recover(db.crash(), db.config)
        assert recovered.list_tables() == []


class TestDeleteBucket:
    def test_delete_empty_bucket(self):
        store = ObjectStore(BlobDB(small_config()))
        store.create_bucket("b")
        store.delete_bucket("b")
        assert store.list_buckets() == []

    def test_delete_nonempty_refused(self):
        store = ObjectStore(BlobDB(small_config()))
        store.create_bucket("b")
        store.put_object("b", b"k", b"v")
        with pytest.raises(DatabaseError):
            store.delete_bucket("b")
        store.delete_object("b", b"k")
        store.delete_bucket("b")

    def test_delete_missing_bucket(self):
        store = ObjectStore(BlobDB(small_config()))
        with pytest.raises(BucketNotFound):
            store.delete_bucket("nope")
