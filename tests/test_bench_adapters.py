"""Tests for the uniform store adapters and the YCSB runner."""

import pytest

from repro.bench import ALL_SYSTEMS, make_store, run_ycsb
from repro.bench.harness import format_table, human_throughput
from repro.workloads.ycsb import YcsbConfig

SMALL = dict(capacity_bytes=256 << 20, buffer_bytes=64 << 20)


@pytest.mark.parametrize("name", ALL_SYSTEMS)
class TestAdapterSemantics:
    def test_put_get_roundtrip(self, name):
        store = make_store(name, **SMALL)
        payload = bytes(range(256)) * 40
        store.put(b"k1", payload)
        assert store.get(b"k1") == payload

    def test_replace(self, name):
        store = make_store(name, **SMALL)
        store.put(b"k", b"old" * 100)
        store.replace(b"k", b"new" * 50)
        assert store.get(b"k") == b"new" * 50

    def test_delete(self, name):
        store = make_store(name, **SMALL)
        store.put(b"k", b"x" * 100)
        store.delete(b"k")
        with pytest.raises(Exception):
            store.get(b"k")

    def test_stat(self, name):
        store = make_store(name, **SMALL)
        store.put(b"k", b"y" * 777)
        assert store.stat(b"k") == 777

    def test_clock_advances(self, name):
        store = make_store(name, **SMALL)
        before = store.model.clock.now_ns
        store.put(b"k", b"z" * 10000)
        store.get(b"k")
        assert store.model.clock.now_ns > before


class TestColdCaches:
    @pytest.mark.parametrize("name", ["our", "our.ht", "ext4.ordered",
                                      "xfs", "btrfs", "f2fs"])
    def test_drop_caches_forces_device_reads(self, name):
        store = make_store(name, **SMALL)
        store.put(b"k", b"c" * 100_000)
        store.get(b"k")  # warm
        store.drop_caches()
        before = store.device.stats.bytes_read
        assert store.get(b"k") == b"c" * 100_000
        assert store.device.stats.bytes_read - before >= 100_000


class TestRunYcsb:
    def test_run_produces_throughput(self):
        store = make_store("our", **SMALL)
        result = run_ycsb(store, YcsbConfig(n_records=20, payload=4096),
                          n_ops=50)
        assert result.ops == 50
        assert result.throughput_ops_s > 0
        assert result.per_op_us > 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            make_store("oracle")

    def test_relative_order_small_payloads(self):
        """Sanity anchor for Fig. 5: our > sqlite > postgresql."""
        cfg = YcsbConfig(n_records=50, payload=120)
        results = {name: run_ycsb(make_store(name, **SMALL), cfg, 200)
                   for name in ("our", "sqlite", "postgresql")}
        assert results["our"].throughput_ops_s > \
            results["sqlite"].throughput_ops_s > \
            results["postgresql"].throughput_ops_s


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["sys", "txn/s"], [["our", "1.2M"],
                                              ["ext4", "300k"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "our" in lines[2]

    def test_human_throughput(self):
        assert human_throughput(2_500_000) == "2.50M"
        assert human_throughput(45_300) == "45.3k"
        assert human_throughput(12.3) == "12.3"
