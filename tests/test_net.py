"""Tests for remote BLOB access over pluggable transports."""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.db.errors import (
    KeyNotFoundError,
    RemoteProtocolError,
    RetriesExhaustedError,
    TransientNetworkError,
)
from repro.net import (
    RDMA,
    SHARED_MEMORY,
    TCP_ETHERNET,
    UNIX_SOCKET,
    BlobServer,
    RemoteBlobStore,
)
from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy


def remote(transport, fault_plan=None, retry_attempts=0):
    db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                             catalog_pages=128, buffer_pool_pages=4096))
    retry = RetryPolicy(db.model, attempts=retry_attempts) \
        if retry_attempts else None
    return RemoteBlobStore(BlobServer(db), transport,
                           fault_plan=fault_plan, retry=retry)


class TestProtocol:
    @pytest.mark.parametrize("transport", [TCP_ETHERNET, UNIX_SOCKET,
                                           RDMA, SHARED_MEMORY],
                             ids=lambda t: t.name)
    def test_put_get_roundtrip(self, transport):
        store = remote(transport)
        payload = bytes(range(256)) * 100
        store.put(b"k", payload)
        assert store.get(b"k") == payload

    def test_stat_and_delete(self):
        store = remote(UNIX_SOCKET)
        store.put(b"k", b"x" * 1234)
        assert store.stat(b"k") == 1234
        store.delete(b"k")
        assert not store.exists(b"k")
        with pytest.raises(KeyNotFoundError):
            store.get(b"k")

    def test_replace_via_put(self):
        store = remote(RDMA)
        store.put(b"k", b"v1")
        store.put(b"k", b"v2 longer")
        assert store.get(b"k") == b"v2 longer"

    def test_server_stats(self):
        store = remote(SHARED_MEMORY)
        store.put(b"k", b"x" * 100)
        store.get(b"k")
        assert store.server.stats.requests == 2
        assert store.server.stats.bytes_out >= 100

    def test_malformed_requests_raise_protocol_error(self):
        """Bad request shapes surface as a typed RemoteProtocolError a
        client can distinguish from server bugs, never a bare Python
        exception."""
        store = remote(UNIX_SOCKET)
        with pytest.raises(RemoteProtocolError):
            store.server.handle_stat(None)
        with pytest.raises(RemoteProtocolError):
            store.server.handle_put(b"k", 12345)
        with pytest.raises(RemoteProtocolError):
            store.server.handle_get(None)
        # Engine errors keep their own type (not wrapped as protocol).
        with pytest.raises(KeyNotFoundError):
            store.server.handle_get(b"missing")


class TestNetworkFaults:
    def test_lost_exchanges_are_retried_to_success(self):
        plan = FaultPlan(FaultSpec(seed=9, network_error=0.9))
        store = remote(UNIX_SOCKET, fault_plan=plan, retry_attempts=4)
        payload = b"\x5a" * 10_000
        store.put(b"k", payload)
        assert store.get(b"k") == payload
        assert plan.stats.network_errors > 0
        assert store.retry.stats.retries == plan.stats.network_errors

    def test_lost_request_never_reaches_the_server(self):
        """A drawn fault loses the request in flight — the burst-capped
        plan drops two attempts, the third is the only one the server
        executes, so blind re-issue is safe."""
        plan = FaultPlan(FaultSpec(seed=0, network_error=1.0))
        store = remote(SHARED_MEMORY, fault_plan=plan, retry_attempts=4)
        store.put(b"k", b"v")
        assert store.server.stats.requests == 1
        assert plan.stats.network_errors == 2

    def test_without_retry_the_typed_error_surfaces(self):
        plan = FaultPlan(FaultSpec(seed=0, network_error=1.0))
        store = remote(UNIX_SOCKET, fault_plan=plan)
        with pytest.raises(TransientNetworkError):
            store.put(b"k", b"v")

    def test_exhausted_retries_degrade_to_typed_error(self):
        plan = FaultPlan(FaultSpec(seed=0, network_error=1.0,
                                   max_consecutive_transients=99))
        store = remote(UNIX_SOCKET, fault_plan=plan, retry_attempts=3)
        with pytest.raises(RetriesExhaustedError):
            store.stat(b"k")
        assert store.retry.stats.exhausted == 1


class TestTransportCosts:
    def measure_get(self, transport, payload_bytes: int) -> float:
        store = remote(transport)
        store.put(b"k", b"\x42" * payload_bytes)
        before = store.model.clock.now_ns
        store.get(b"k")
        return store.model.clock.now_ns - before

    def test_tcp_is_slowest(self):
        times = {t.name: self.measure_get(t, 100_000)
                 for t in (TCP_ETHERNET, UNIX_SOCKET, RDMA, SHARED_MEMORY)}
        assert times["tcp"] > times["unix"] > times["rdma"] > times["shm"]

    def test_zero_copy_skips_serialization(self):
        """RDMA/SHM responses avoid the wire copy of the payload."""
        copy_based = self.measure_get(UNIX_SOCKET, 1_000_000)
        zero_copy = self.measure_get(SHARED_MEMORY, 1_000_000)
        assert zero_copy < copy_based / 2

    def test_roundtrip_dominates_small_requests(self):
        """For 120 B objects the fixed round trip is everything —
        the paper's Fig. 5 explanation for PostgreSQL/MySQL."""
        small = self.measure_get(TCP_ETHERNET, 120)
        assert small >= TCP_ETHERNET.roundtrip_ns
        assert small < TCP_ETHERNET.roundtrip_ns * 2.2

    def test_shm_get_near_local_speed(self):
        """Shared memory loses little over the embedded engine."""
        store = remote(SHARED_MEMORY)
        payload = b"\x24" * 1_000_000
        store.put(b"k", payload)
        db = store.server.db

        t0 = db.model.clock.now_ns
        store.get(b"k")
        remote_ns = db.model.clock.now_ns - t0

        t0 = db.model.clock.now_ns
        db.read_blob(store.server.table, b"k")
        local_ns = db.model.clock.now_ns - t0
        assert remote_ns < 1.35 * local_ns
