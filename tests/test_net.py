"""Tests for remote BLOB access over pluggable transports."""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.db.errors import KeyNotFoundError
from repro.net import (
    RDMA,
    SHARED_MEMORY,
    TCP_ETHERNET,
    UNIX_SOCKET,
    BlobServer,
    RemoteBlobStore,
)


def remote(transport):
    db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                             catalog_pages=128, buffer_pool_pages=4096))
    return RemoteBlobStore(BlobServer(db), transport)


class TestProtocol:
    @pytest.mark.parametrize("transport", [TCP_ETHERNET, UNIX_SOCKET,
                                           RDMA, SHARED_MEMORY],
                             ids=lambda t: t.name)
    def test_put_get_roundtrip(self, transport):
        store = remote(transport)
        payload = bytes(range(256)) * 100
        store.put(b"k", payload)
        assert store.get(b"k") == payload

    def test_stat_and_delete(self):
        store = remote(UNIX_SOCKET)
        store.put(b"k", b"x" * 1234)
        assert store.stat(b"k") == 1234
        store.delete(b"k")
        assert not store.exists(b"k")
        with pytest.raises(KeyNotFoundError):
            store.get(b"k")

    def test_replace_via_put(self):
        store = remote(RDMA)
        store.put(b"k", b"v1")
        store.put(b"k", b"v2 longer")
        assert store.get(b"k") == b"v2 longer"

    def test_server_stats(self):
        store = remote(SHARED_MEMORY)
        store.put(b"k", b"x" * 100)
        store.get(b"k")
        assert store.server.stats.requests == 2
        assert store.server.stats.bytes_out >= 100


class TestTransportCosts:
    def measure_get(self, transport, payload_bytes: int) -> float:
        store = remote(transport)
        store.put(b"k", b"\x42" * payload_bytes)
        before = store.model.clock.now_ns
        store.get(b"k")
        return store.model.clock.now_ns - before

    def test_tcp_is_slowest(self):
        times = {t.name: self.measure_get(t, 100_000)
                 for t in (TCP_ETHERNET, UNIX_SOCKET, RDMA, SHARED_MEMORY)}
        assert times["tcp"] > times["unix"] > times["rdma"] > times["shm"]

    def test_zero_copy_skips_serialization(self):
        """RDMA/SHM responses avoid the wire copy of the payload."""
        copy_based = self.measure_get(UNIX_SOCKET, 1_000_000)
        zero_copy = self.measure_get(SHARED_MEMORY, 1_000_000)
        assert zero_copy < copy_based / 2

    def test_roundtrip_dominates_small_requests(self):
        """For 120 B objects the fixed round trip is everything —
        the paper's Fig. 5 explanation for PostgreSQL/MySQL."""
        small = self.measure_get(TCP_ETHERNET, 120)
        assert small >= TCP_ETHERNET.roundtrip_ns
        assert small < TCP_ETHERNET.roundtrip_ns * 2.2

    def test_shm_get_near_local_speed(self):
        """Shared memory loses little over the embedded engine."""
        store = remote(SHARED_MEMORY)
        payload = b"\x24" * 1_000_000
        store.put(b"k", payload)
        db = store.server.db

        t0 = db.model.clock.now_ns
        store.get(b"k")
        remote_ns = db.model.clock.now_ns - t0

        t0 = db.model.clock.now_ns
        db.read_blob(store.server.table, b"k")
        local_ns = db.model.clock.now_ns - t0
        assert remote_ns < 1.35 * local_ns
