"""Tests for remote BLOB access over pluggable transports."""

import pytest

from repro.db import BlobDB, EngineConfig
from repro.db.errors import (
    KeyNotFoundError,
    RemoteProtocolError,
    RetriesExhaustedError,
    TransientNetworkError,
)
from repro.net import (
    RDMA,
    SHARED_MEMORY,
    TCP_ETHERNET,
    UNIX_SOCKET,
    BlobServer,
    RemoteBlobStore,
)
from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy


def remote(transport, fault_plan=None, retry_attempts=0):
    db = BlobDB(EngineConfig(device_pages=16384, wal_pages=512,
                             catalog_pages=128, buffer_pool_pages=4096))
    retry = RetryPolicy(db.model, attempts=retry_attempts) \
        if retry_attempts else None
    return RemoteBlobStore(BlobServer(db), transport,
                           fault_plan=fault_plan, retry=retry)


class TestProtocol:
    @pytest.mark.parametrize("transport", [TCP_ETHERNET, UNIX_SOCKET,
                                           RDMA, SHARED_MEMORY],
                             ids=lambda t: t.name)
    def test_put_get_roundtrip(self, transport):
        store = remote(transport)
        payload = bytes(range(256)) * 100
        store.put(b"k", payload)
        assert store.get(b"k") == payload

    def test_stat_and_delete(self):
        store = remote(UNIX_SOCKET)
        store.put(b"k", b"x" * 1234)
        assert store.stat(b"k") == 1234
        store.delete(b"k")
        assert not store.exists(b"k")
        with pytest.raises(KeyNotFoundError):
            store.get(b"k")

    def test_replace_via_put(self):
        store = remote(RDMA)
        store.put(b"k", b"v1")
        store.put(b"k", b"v2 longer")
        assert store.get(b"k") == b"v2 longer"

    def test_server_stats(self):
        store = remote(SHARED_MEMORY)
        store.put(b"k", b"x" * 100)
        store.get(b"k")
        assert store.server.stats.requests == 2
        assert store.server.stats.bytes_out >= 100

    def test_malformed_requests_raise_protocol_error(self):
        """Bad request shapes surface as a typed RemoteProtocolError a
        client can distinguish from server bugs, never a bare Python
        exception."""
        store = remote(UNIX_SOCKET)
        with pytest.raises(RemoteProtocolError):
            store.server.handle_stat(None)
        with pytest.raises(RemoteProtocolError):
            store.server.handle_put(b"k", 12345)
        with pytest.raises(RemoteProtocolError):
            store.server.handle_get(None)
        # Engine errors keep their own type (not wrapped as protocol).
        with pytest.raises(KeyNotFoundError):
            store.server.handle_get(b"missing")


class TestNetworkFaults:
    def test_lost_exchanges_are_retried_to_success(self):
        plan = FaultPlan(FaultSpec(seed=9, network_error=0.9))
        store = remote(UNIX_SOCKET, fault_plan=plan, retry_attempts=4)
        payload = b"\x5a" * 10_000
        store.put(b"k", payload)
        assert store.get(b"k") == payload
        assert plan.stats.network_errors > 0
        assert store.retry.stats.retries == plan.stats.network_errors

    def test_lost_request_never_reaches_the_server(self):
        """A drawn fault loses the request in flight — the burst-capped
        plan drops two attempts, the third is the only one the server
        executes, so blind re-issue is safe."""
        plan = FaultPlan(FaultSpec(seed=0, network_error=1.0))
        store = remote(SHARED_MEMORY, fault_plan=plan, retry_attempts=4)
        store.put(b"k", b"v")
        assert store.server.stats.requests == 1
        assert plan.stats.network_errors == 2

    def test_without_retry_the_typed_error_surfaces(self):
        plan = FaultPlan(FaultSpec(seed=0, network_error=1.0))
        store = remote(UNIX_SOCKET, fault_plan=plan)
        with pytest.raises(TransientNetworkError):
            store.put(b"k", b"v")

    def test_exhausted_retries_degrade_to_typed_error(self):
        plan = FaultPlan(FaultSpec(seed=0, network_error=1.0,
                                   max_consecutive_transients=99))
        store = remote(UNIX_SOCKET, fault_plan=plan, retry_attempts=3)
        with pytest.raises(RetriesExhaustedError):
            store.stat(b"k")
        assert store.retry.stats.exhausted == 1


class TestTransportCosts:
    def measure_get(self, transport, payload_bytes: int) -> float:
        store = remote(transport)
        store.put(b"k", b"\x42" * payload_bytes)
        before = store.model.clock.now_ns
        store.get(b"k")
        return store.model.clock.now_ns - before

    def test_tcp_is_slowest(self):
        times = {t.name: self.measure_get(t, 100_000)
                 for t in (TCP_ETHERNET, UNIX_SOCKET, RDMA, SHARED_MEMORY)}
        assert times["tcp"] > times["unix"] > times["rdma"] > times["shm"]

    def test_zero_copy_skips_serialization(self):
        """RDMA/SHM responses avoid the wire copy of the payload."""
        copy_based = self.measure_get(UNIX_SOCKET, 1_000_000)
        zero_copy = self.measure_get(SHARED_MEMORY, 1_000_000)
        assert zero_copy < copy_based / 2

    def test_roundtrip_dominates_small_requests(self):
        """For 120 B objects the fixed round trip is everything —
        the paper's Fig. 5 explanation for PostgreSQL/MySQL."""
        small = self.measure_get(TCP_ETHERNET, 120)
        assert small >= TCP_ETHERNET.roundtrip_ns
        assert small < TCP_ETHERNET.roundtrip_ns * 2.2

    def test_shm_get_near_local_speed(self):
        """Shared memory loses little over the embedded engine."""
        store = remote(SHARED_MEMORY)
        payload = b"\x24" * 1_000_000
        store.put(b"k", payload)
        db = store.server.db

        t0 = db.model.clock.now_ns
        store.get(b"k")
        remote_ns = db.model.clock.now_ns - t0

        t0 = db.model.clock.now_ns
        db.read_blob(store.server.table, b"k")
        local_ns = db.model.clock.now_ns - t0
        assert remote_ns < 1.35 * local_ns


class TestFaultyServerTorture:
    """Satellite coverage: a server whose *device* injects faults, under
    a network-loss storm, must converge with exact byte accounting."""

    def faulty_remote(self, device_seed=3, net_seed=11):
        from repro.sim.cost import CostModel
        from repro.storage.device import SimulatedNVMe
        from repro.storage.faults import FaultyNVMe

        config = EngineConfig(device_pages=16384, wal_pages=512,
                              catalog_pages=128, buffer_pool_pages=4096)
        model = CostModel()
        inner = SimulatedNVMe(model, capacity_pages=config.device_pages)
        device_plan = FaultPlan(FaultSpec(seed=device_seed,
                                          transient_error=0.05))
        db = BlobDB(config, device=FaultyNVMe(inner, device_plan),
                    model=model)
        net_plan = FaultPlan(FaultSpec(seed=net_seed, network_error=0.3))
        retry = RetryPolicy(db.model, attempts=8)
        store = RemoteBlobStore(BlobServer(db), TCP_ETHERNET,
                                fault_plan=net_plan, retry=retry)
        return store, device_plan, net_plan

    def test_storm_converges_with_exact_byte_accounting(self):
        store, device_plan, net_plan = self.faulty_remote()
        n = 40
        expected_in = expected_out = 0
        for i in range(n):
            key = b"k%04d" % i
            data = bytes([i % 251]) * (512 + 16 * i)
            store.put(key, data)
            expected_in += len(key) + len(data)
            expected_out += 16
        for i in range(n):
            key = b"k%04d" % i
            got = store.get(key)
            assert got == bytes([i % 251]) * (512 + 16 * i)
            expected_in += len(key)
            expected_out += len(got)
        # The storm actually stormed: lost exchanges and device-level
        # transients both fired and were absorbed by their retry layers.
        assert net_plan.stats.network_errors > 0
        assert device_plan.stats.transient_errors > 0
        # Lost requests never reached the server, so despite the
        # retries every operation executed (and was counted) exactly
        # once, and the byte ledgers match the payloads to the byte.
        stats = store.server.stats
        assert stats.requests == 2 * n
        assert stats.bytes_in == expected_in
        assert stats.bytes_out == expected_out

    def test_torture_run_is_deterministic(self):
        ledgers = []
        for _ in range(2):
            store, _, net_plan = self.faulty_remote()
            for i in range(20):
                store.put(b"k%02d" % i, b"v" * (100 + i))
            for i in range(20):
                store.get(b"k%02d" % i)
            ledgers.append((store.server.stats.requests,
                            store.server.stats.bytes_in,
                            store.server.stats.bytes_out,
                            net_plan.stats.network_errors,
                            store.model.clock.now_ns))
        assert ledgers[0] == ledgers[1]


class TestDispatchCostParam:
    def test_dispatch_cost_is_configurable_via_cost_params(self):
        from repro.sim.cost import CostModel, CostParams

        def dispatch_ns(rpc_dispatch_ns):
            config = EngineConfig(device_pages=16384, wal_pages=512,
                                  catalog_pages=128,
                                  buffer_pool_pages=4096)
            model = CostModel(
                CostParams().copy(rpc_dispatch_ns=rpc_dispatch_ns))
            db = BlobDB(config, model=model)
            server = BlobServer(db)
            server.handle_put(b"k", b"v" * 64)
            start = model.clock.now_ns
            server.handle_stat(b"k")
            return model.clock.now_ns - start
        assert dispatch_ns(50_000.0) - dispatch_ns(0.0) == \
            pytest.approx(50_000.0)


def sharded_server(n_shards=4, transports=TCP_ETHERNET, fault_plan=None,
                   retry_attempts=0):
    from repro.net import ShardedBlobServer
    from repro.shard import ShardedBlobDB

    config = EngineConfig(device_pages=16384, wal_pages=512,
                          catalog_pages=128, buffer_pool_pages=4096)
    sdb = ShardedBlobDB(n_shards=n_shards, config=config)
    return ShardedBlobServer(sdb, transports, fault_plan=fault_plan,
                             retry_attempts=retry_attempts)


class TestShardedServer:
    @pytest.mark.parametrize("transport", [TCP_ETHERNET, UNIX_SOCKET,
                                           RDMA, SHARED_MEMORY],
                             ids=lambda t: t.name)
    def test_scatter_gather_roundtrip(self, transport):
        server = sharded_server(transports=transport)
        keys = [b"key%04d" % i for i in range(24)]
        server.multiput([(k, bytes([i]) * 777)
                         for i, k in enumerate(keys)])
        got = server.multiget(keys)
        for i, data in enumerate(got):
            assert data == bytes([i]) * 777

    def test_single_key_ops(self):
        server = sharded_server()
        server.put(b"k", b"x" * 321)
        assert server.get(b"k") == b"x" * 321
        assert server.stat(b"k") == 321
        server.delete(b"k")
        with pytest.raises(KeyNotFoundError):
            server.get(b"k")

    def test_per_shard_transport_list(self):
        server = sharded_server(
            n_shards=2, transports=[TCP_ETHERNET, RDMA])
        server.put(b"a", b"1" * 64)
        server.put(b"b", b"2" * 64)
        assert server.get(b"a") == b"1" * 64

    def test_transport_count_must_match_shards(self):
        with pytest.raises(ValueError):
            sharded_server(n_shards=4, transports=[TCP_ETHERNET])

    def test_client_latency_is_makespan(self):
        server = sharded_server()
        sdb = server.sdb
        keys = [b"key%04d" % i for i in range(32)]
        before = [b.db.model.clock.now_ns for b in server.backends]
        start = sdb.model.clock.now_ns
        server.multiput([(k, b"p" * 1024) for k in keys])
        observed = sdb.model.clock.now_ns - start
        per_shard = [b.db.model.clock.now_ns - t
                     for b, t in zip(server.backends, before)]
        fanout = sum(1 for ns in per_shard if ns > 0)
        assert fanout > 1
        assert observed < sum(per_shard)
        assert observed >= max(per_shard)

    def test_partial_failure_retries_only_the_lost_sub_batch(self):
        """A TransientNetworkError loses one shard's sub-batch in
        flight; the per-shard retry re-issues it alone, so every
        backend still executes its sub-batch exactly once."""
        plan = FaultPlan(FaultSpec(seed=9, network_error=0.4))
        server = sharded_server(fault_plan=plan, retry_attempts=6)
        keys = [b"key%04d" % i for i in range(32)]
        server.multiput([(k, b"v" * 256) for k in keys])
        assert plan.stats.network_errors > 0
        assert sum(r.stats.retries for r in server.retries) == \
            plan.stats.network_errors
        # Exactly-once execution per key despite the storm: the lost
        # sub-batches never reached their backend.
        parts = {s: len(sub) for s, sub in
                 server.router.partition(keys).items()}
        server.router.stats.routed_keys -= len(keys)  # undo probe
        for shard_id, backend in enumerate(server.backends):
            assert backend.stats.requests == parts.get(shard_id, 0)

    def test_without_retry_the_loss_surfaces_typed(self):
        plan = FaultPlan(FaultSpec(seed=1, network_error=1.0))
        server = sharded_server(fault_plan=plan)
        with pytest.raises(TransientNetworkError):
            server.put(b"k", b"v")

    def test_aggregate_stats_sum_backends(self):
        server = sharded_server()
        keys = [b"key%04d" % i for i in range(16)]
        server.multiput([(k, b"d" * 128) for k in keys])
        total = server.stats
        assert total.requests == 16
        assert total.requests == \
            sum(b.stats.requests for b in server.backends)
        assert total.bytes_in == sum(len(k) + 128 for k in keys)
