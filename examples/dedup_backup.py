#!/usr/bin/env python3
"""Content-addressed deduplicating backups on the BLOB engine.

Uses the machinery of Section III-F for a classic storage task:

* the **Blob State index** finds duplicate content by digest — backing
  up an unchanged file costs a point query, zero content writes;
* the **FUSE xattr** ``user.sha256`` exposes the digest to external
  tools for free;
* write-amplification accounting proves the dedup actually skipped the
  device.

Run:  python examples/dedup_backup.py
"""

from repro import BlobDB, EngineConfig
from repro.db.index import BlobStateIndex
from repro.fuse import BlobFuse


class BackupVault:
    """Content-addressed store: equal content is stored once."""

    def __init__(self, db: BlobDB) -> None:
        self.db = db
        db.create_table("chunks")     # content-addressed payloads
        db.create_table("snapshots")  # filename -> content digest
        self.index = BlobStateIndex(db, "chunks")
        self.deduped = 0

    def backup(self, snapshot: str, filename: bytes, content: bytes) -> bool:
        """Store one file; returns True if content already existed."""
        existing = self.index.lookup_content(content)
        if existing:
            digest_key = existing[0]
            duplicate = True
            self.deduped += 1
        else:
            import hashlib
            # Hex keys so chunks double as file names under FUSE.
            digest_key = hashlib.sha256(content).hexdigest().encode()
            with self.db.transaction() as txn:
                state = self.db.put_blob(txn, "chunks", digest_key, content)
            self.index.insert(state, digest_key)
            duplicate = False
        with self.db.transaction() as txn:
            self.db.put(txn, "snapshots",
                        f"{snapshot}/".encode() + filename, digest_key)
        return duplicate

    def restore(self, snapshot: str, filename: bytes) -> bytes:
        digest_key = self.db.get("snapshots",
                                 f"{snapshot}/".encode() + filename)
        return self.db.read_blob("chunks", digest_key)


def main() -> None:
    db = BlobDB(EngineConfig(device_pages=32768, buffer_pool_pages=8192,
                             wal_pages=1024, catalog_pages=512))
    vault = BackupVault(db)

    files = {
        b"report.pdf": b"%PDF quarterly numbers " * 4000,
        b"logo.png": b"\x89PNG logo bits " * 2000,
        b"notes.txt": b"meeting notes\n" * 500,
    }

    # Monday: everything is new.
    for name, content in files.items():
        dup = vault.backup("monday", name, content)
        print(f"monday  {name.decode():12s} {'dedup' if dup else 'stored'}")

    written_after_monday = db.device.stats.bytes_written

    # Tuesday: one file changed, two unchanged.
    files[b"notes.txt"] = files[b"notes.txt"] + b"tuesday addendum\n"
    for name, content in files.items():
        dup = vault.backup("tuesday", name, content)
        print(f"tuesday {name.decode():12s} {'dedup' if dup else 'stored'}")

    delta = db.device.stats.bytes_written - written_after_monday
    print(f"\ntuesday wrote only {delta >> 10} KiB to the device "
          f"(the changed file + metadata); {vault.deduped} files deduped")

    # Restores hit the shared chunks.
    assert vault.restore("monday", b"report.pdf") == \
        vault.restore("tuesday", b"report.pdf")
    print("restore check: monday and tuesday report.pdf are one chunk")

    # External tools can see digests through the FUSE xattr.
    fuse = BlobFuse(db)
    chunk_names = fuse.readdir("/chunks")[2:]
    digest = fuse.getxattr("/chunks/" + chunk_names[0], "user.sha256")
    print(f"xattr user.sha256 of first chunk: {digest[:16].decode()}…")

    print("\n" + db.stats_report().format())


if __name__ == "__main__":
    main()
