#!/usr/bin/env python3
"""Write-amplification tour: who writes your BLOB how many times?

Stores the same 256 KB object in every system of the paper's evaluation
and reads the per-category byte accounting off the simulated device —
Table I's "Duplicated copies" column, measured.

Run:  python examples/write_amplification_tour.py
"""

from repro.bench.adapters import make_store

PAYLOAD = 256 * 1024
SYSTEMS = ("our", "our.physlog", "ext4.ordered", "ext4.journal",
           "postgresql", "sqlite", "mysql")


def settle(store) -> None:
    """Force deferred writes so all copies are visible."""
    if hasattr(store, "db"):
        store.db.checkpoint()
    elif hasattr(store, "fs"):
        store.fs.writeback()
    elif hasattr(store, "store"):
        store.store.flush()


def main() -> None:
    print(f"{'system':>14} {'data':>8} {'wal':>8} {'journal':>8} "
          f"{'dwb':>8} {'copies/byte':>12}")
    for name in SYSTEMS:
        store = make_store(name, capacity_bytes=512 << 20,
                           buffer_bytes=128 << 20)
        before = store.device.stats.snapshot()
        store.put(b"object", b"\x77" * PAYLOAD)
        settle(store)
        delta = store.device.stats.delta_since(before)
        cats = delta.bytes_written_by_category
        content = sum(cats.get(c, 0)
                      for c in ("data", "wal", "journal", "dwb", "index"))
        print(f"{name:>14} {cats.get('data', 0) >> 10:>7}K "
              f"{cats.get('wal', 0) >> 10:>7}K "
              f"{cats.get('journal', 0) >> 10:>7}K "
              f"{cats.get('dwb', 0) >> 10:>7}K "
              f"{content / PAYLOAD:>11.2f}x")
    print("\nThe paper's design flushes each BLOB exactly once: the WAL"
          "\ncarries only the ~200-byte Blob State, so copies/byte ~ 1.")


if __name__ == "__main__":
    main()
