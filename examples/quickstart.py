#!/usr/bin/env python3
"""Quickstart: the BLOB engine in five minutes.

Creates a database, stores BLOBs transactionally, reads them back
zero-copy, grows one without re-reading it, survives a crash, and shows
the single-flush write-amplification win.

Run:  python examples/quickstart.py
"""

from repro import BlobDB, EngineConfig


def main() -> None:
    # A 64 MiB simulated device with a 16 MiB buffer pool.
    config = EngineConfig(device_pages=16384, buffer_pool_pages=4096,
                          wal_pages=512, catalog_pages=128)
    db = BlobDB(config)
    db.create_table("image")

    # -- store BLOBs transactionally -------------------------------------
    cat = b"\xff\xd8" + b"meow" * 10_000          # a 40 KB "JPEG"
    dog = b"\xff\xd8" + b"woof" * 25_000          # a 100 KB "JPEG"
    with db.transaction() as txn:
        state = db.put_blob(txn, "image", b"cat.jpg", cat)
        db.put_blob(txn, "image", b"dog.jpg", dog)
    print(f"stored cat.jpg: {state.size} bytes in "
          f"{state.num_extents} extents, sha256={state.sha256.hex()[:16]}…")

    # -- read: one relation lookup, one client copy ----------------------
    assert db.read_blob("image", b"cat.jpg") == cat
    with db.read_blob_view("image", b"dog.jpg") as view:
        # Zero-copy contiguous view (virtual-memory aliasing).
        assert view.contiguous()[:2] == b"\xff\xd8"
    print("read back both images (one memcpy each)")

    # -- grow without re-reading (resumable SHA-256) ----------------------
    reads_before = db.device.stats.bytes_read
    with db.transaction() as txn:
        grown = db.append_blob(txn, "image", b"cat.jpg", b"!extra frames!")
    print(f"grew cat.jpg to {grown.size} bytes; device bytes read during "
          f"append: {db.device.stats.bytes_read - reads_before}")

    # -- single-flush write amplification ---------------------------------
    before = db.device.stats.snapshot()
    with db.transaction() as txn:
        db.put_blob(txn, "image", b"xray.png", b"\x89PNG" + b"\x00" * 200_000)
    delta = db.device.stats.delta_since(before)
    data = delta.bytes_written_by_category["data"]
    wal = delta.bytes_written_by_category["wal"]
    print(f"200 KB BLOB insert wrote {data} data bytes + {wal} WAL bytes "
          f"(content written once; only the Blob State is logged)")

    # -- crash and recover -------------------------------------------------
    device = db.crash()
    recovered = BlobDB.recover(device, config)
    assert recovered.read_blob("image", b"cat.jpg") == cat + b"!extra frames!"
    assert recovered.read_blob("image", b"xray.png")[:4] == b"\x89PNG"
    print(f"recovered after crash: {recovered.table_size('image')} images "
          f"intact, failed transactions: {recovered.failed_txns}")


if __name__ == "__main__":
    main()
