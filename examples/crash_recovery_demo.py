#!/usr/bin/env python3
"""Crash recovery walkthrough, including the torn-BLOB window.

Demonstrates the recoverability protocol of Section III-C:

1. committed BLOBs survive a crash;
2. uncommitted work vanishes cleanly;
3. a crash *between* WAL durability and the extent flush is detected by
   the SHA-256 validation during the Analysis phase — the transaction is
   declared failed, joins the undo list, and its extents are reclaimed.

Run:  python examples/crash_recovery_demo.py
"""

from repro import BlobDB, EngineConfig

CONFIG = EngineConfig(device_pages=16384, buffer_pool_pages=4096,
                      wal_pages=512, catalog_pages=256)


def main() -> None:
    db = BlobDB(CONFIG)
    db.create_table("vault")

    # 1. A committed BLOB.
    with db.transaction() as txn:
        db.put_blob(txn, "vault", b"safe", b"committed data " * 3000)

    # 2. An uncommitted transaction, in flight at crash time.
    limbo = db.begin()
    db.put_blob(limbo, "vault", b"limbo", b"never committed " * 3000)

    # 3. A torn commit: the WAL (with the Blob State) is durable, but we
    #    "crash" before the extent flush reaches the device.
    torn = db.begin()
    db.put_blob(torn, "vault", b"torn", b"torn write " * 5000)
    real_flush = db.pool.flush_batch
    db.pool.flush_batch = lambda *a, **k: 0     # extents never hit disk
    db.commit(torn)
    db.pool.flush_batch = real_flush

    print("crashing with: 1 committed, 1 uncommitted, 1 torn commit …")
    device = db.crash()

    recovered = BlobDB.recover(device, CONFIG)
    print(f"failed transactions on the undo list: {recovered.failed_txns}")
    assert recovered.read_blob("vault", b"safe").startswith(b"committed")
    print("'safe'  -> recovered intact")
    for key in (b"limbo", b"torn"):
        assert not recovered.exists("vault", key)
        print(f"'{key.decode()}' -> correctly absent")

    # The torn transaction's extents left no holes: the space is reusable.
    with recovered.transaction() as txn:
        recovered.put_blob(txn, "vault", b"reuse", b"fresh " * 10000)
    assert recovered.read_blob("vault", b"reuse").startswith(b"fresh")
    print("torn extents reclaimed: new BLOB stored in their place")


if __name__ == "__main__":
    main()
