#!/usr/bin/env python3
"""The paper's motivating scenario: a medical-imaging application.

Patient records and X-ray images live in ONE transactional store — no
more "fsync the file, then commit the row" split-brain.  External tools
that expect *files* read the images through the FUSE mount without any
code changes (Section III-E).

Run:  python examples/image_store_fuse.py
"""

import errno

from repro import BlobDB, EngineConfig, FuseMount
from repro.fuse import FuseError


# -- an "unmodified external program" ------------------------------------
# This function knows nothing about the database: it takes any binary
# file object, like a computer-vision library would.

def sniff_format(fileobj) -> str:
    magic = fileobj.read(4)
    if magic[:2] == b"\xff\xd8":
        return "JPEG"
    if magic == b"\x89PNG":
        return "PNG"
    return "unknown"


def main() -> None:
    config = EngineConfig(device_pages=16384, buffer_pool_pages=4096,
                          wal_pages=512, catalog_pages=128)
    db = BlobDB(config)
    db.create_table("patient")
    db.create_table("xray")

    # One transaction covers the record AND its image: a crash can never
    # leave "an X-ray scan without a patient record, or a patient record
    # without its associated X-ray image" (Section I).
    with db.transaction() as txn:
        db.put(txn, "patient", b"P-1001",
               b'{"name": "J. Doe", "scan": "chest-01.jpg"}')
        db.put_blob(txn, "xray", b"chest-01.jpg",
                    b"\xff\xd8" + b"\x00" * 150_000)
        db.put_blob(txn, "xray", b"hand-07.png",
                    b"\x89PNG" + b"\x11" * 80_000)

    # -- mount and browse like a file system -------------------------------
    mount = FuseMount(db, mountpoint="/mnt/hospital")
    print("directories:", mount.listdir("/"))
    print("xray files: ", mount.listdir("/xray"))
    print("chest-01.jpg size:", mount.stat("/xray/chest-01.jpg").st_size)

    # -- the unmodified tool reads DB BLOBs as files ------------------------
    for name in mount.listdir("/xray"):
        with mount.open(f"/mnt/hospital/xray/{name}") as f:
            print(f"{name}: detected {sniff_format(f)}")

    # -- files are read-only; writers are told EROFS -------------------------
    try:
        mount.fuse.open("/xray/chest-01.jpg", write=True)
    except FuseError as exc:
        assert exc.errno == errno.EROFS
        print("write attempt correctly rejected (read-only exposure)")

    # -- reads are transactionally consistent --------------------------------
    handle = mount.open("/xray/chest-01.jpg")
    first_bytes = handle.read(2)
    # A concurrent delete now conflicts with the reader's lock:
    from repro.db.errors import TransactionConflict
    txn = db.begin()
    try:
        db.delete_blob(txn, "xray", b"chest-01.jpg")
        raise AssertionError("delete should have conflicted")
    except TransactionConflict:
        db.abort(txn)
        print("concurrent delete blocked while the file is open")
    handle.seek(0)
    assert handle.read(2) == first_bytes
    handle.close()


if __name__ == "__main__":
    main()
