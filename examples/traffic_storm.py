#!/usr/bin/env python3
"""Traffic storm: open-loop overload, the knee, and admission control.

Walks the whole `repro.sched` story on one small fleet:

1. *Calibrate* — a closed-loop run measures what the fleet can serve.
2. *Walk the knee* — open-loop Poisson arrivals at rising fractions of
   that capacity: below the knee completed throughput tracks offered
   load; past it throughput saturates while p999 latency and the
   dispatch backlog explode.  No request is ever refused — the queue
   just grows, which *is* the failure mode of an unprotected service.
3. *Storm through admission* — the worst overload replayed through a
   per-tenant token bucket, once shedding (bounded tail, exact shed
   counts) and once queueing (nothing lost, latency pays instead).
   Tenant 1 is given a zero quota: its storm is fully shed while
   tenant 0 is untouched.

Everything runs on the virtual clock with seeded RNGs, so every number
printed here is byte-identical on every machine.

Run:  python examples/traffic_storm.py
"""

from repro.sched import (
    AdmissionController,
    TokenBucket,
    TrafficConfig,
    TrafficSim,
    generate_jobs,
)

TENANTS = 2
OPS_PER_TENANT = 120
SEED = 23


def fleet(admission=None) -> TrafficSim:
    return TrafficSim(TrafficConfig(
        n_workers=2, n_shards=1, n_keys=32, payload_bytes=4096,
        read_ratio=0.5, seed=SEED), admission=admission)


def jobs_at(capacity_ops_s: float, mult: float):
    # generate_jobs rates are per tenant: aggregate = tenants * rate.
    return generate_jobs(
        tenants=TENANTS, per_tenant=OPS_PER_TENANT,
        rate_ops_s=capacity_ops_s * mult / TENANTS, seed=SEED,
        n_keys=32, payload_bytes=4096, read_ratio=0.5)


def main() -> None:
    closed = fleet().run_closed(TENANTS * 60, tenants=TENANTS)
    cap = closed.throughput_ops_s
    print(f"closed-loop capacity: {cap:,.0f} op/s "
          f"(p999 {closed.latency['p999'] / 1000:.1f} us)")

    print("\nopen loop, no admission control — walking the knee")
    print(f"  {'offered':>8} {'op/s':>12} {'p50 us':>8} {'p999 us':>9} "
          f"{'backlog':>8}")
    for mult in (0.25, 0.5, 1.0, 2.0, 4.0):
        res = fleet().run(jobs_at(cap, mult))
        print(f"  {mult:>7.2f}x {res.throughput_ops_s:>12,.0f} "
              f"{res.latency['p50'] / 1000:>8.1f} "
              f"{res.latency['p999'] / 1000:>9.1f} "
              f"{res.max_dispatch_depth:>8}")
    print("  throughput saturates at the knee; only the tail keeps "
          "growing.")

    print("\nsame 4x storm, token-bucket admission "
          "(tenant 1 has zero quota)")
    storm = jobs_at(cap, 4.0)
    for policy in ("shed", "queue"):
        ctl = AdmissionController(
            policy=policy, rate_tokens_s=cap * 0.3, burst=8.0,
            quotas={1: TokenBucket(0.0, 0.0)})
        res = fleet(admission=ctl).run(storm)
        shed_t = {t: n for t, n in sorted(res.shed_by_tenant.items())}
        print(f"  policy={policy:<5} completed {res.completed:>3} "
              f"shed {res.shed:>3} {shed_t} queued {res.queued_ops:>3} "
              f"p999 {res.latency['p999'] / 1000:>7.1f} us")
        assert res.offered == res.admitted + res.shed  # exact accounting
    print("  shed bounds the tail by refusing work; queue completes "
          "everything\n  and pays in latency — both with exact, "
          "per-tenant accounting.")


if __name__ == "__main__":
    main()
