#!/usr/bin/env python3
"""The paper's own listings, executed end to end.

Section III-E: ``CREATE TABLE image (filename VARCHAR PRIMARY KEY,
content BLOB)`` and the FUSE exposure of that relation as a directory.
Section III-F: ``CREATE UDF classify(blob) -> TEXT``, the semantic
index, and ``SELECT * FROM image WHERE classify(content)='cat'``.

Run:  python examples/paper_listings.py
"""

from repro import BlobDB, EngineConfig, FuseMount
from repro.sql import SqlSession


def classify(content: bytes) -> str:
    """The paper's classify() UDF — a toy image classifier."""
    if content.startswith(b"\xff\xd8CAT"):
        return "cat"
    if content.startswith(b"\xff\xd8DOG"):
        return "dog"
    return "unknown"


def main() -> None:
    db = BlobDB(EngineConfig(device_pages=16384, buffer_pool_pages=4096,
                             wal_pages=512, catalog_pages=256))
    session = SqlSession(db)
    session.register_udf("classify", classify)

    # --- Section III-E's listing -----------------------------------------
    session.execute(
        "CREATE TABLE image (filename VARCHAR PRIMARY KEY, content BLOB)")
    for name, payload in ((b"whiskers.jpg", b"\xff\xd8CAT" + b"\x01" * 5000),
                          (b"rex.jpg", b"\xff\xd8DOG" + b"\x02" * 5000),
                          (b"tom.jpg", b"\xff\xd8CAT" + b"\x03" * 9000)):
        session.execute(
            f"INSERT INTO image VALUES ('{name.decode()}', "
            f"X'{payload.hex()}')")
    print("table image:", [r[0].decode() for r in
                           session.execute("SELECT filename FROM image")])

    # --- Section III-F's listing ------------------------------------------
    session.execute("CREATE UDF classify(blob) -> TEXT")
    session.execute("CREATE INDEX foo ON image (classify(content))")
    cats = session.execute(
        "SELECT * FROM image WHERE classify(content) = 'cat'")
    print("SELECT ... WHERE classify(content)='cat' ->",
          sorted(r[0].decode() for r in cats))

    # --- "Relation as a directory" ------------------------------------------
    mount = FuseMount(db, mountpoint="/foo/bar")
    print("ls /foo/bar        ->", mount.listdir("/"))
    print("ls /foo/bar/image  ->", mount.listdir("/image"))
    with mount.open("/foo/bar/image/whiskers.jpg") as f:
        head = f.read(7)
    print("read(whiskers.jpg, 7 bytes) ->", head)
    assert classify(head + b"") == "cat"


if __name__ == "__main__":
    main()
