#!/usr/bin/env python3
"""An S3-style object store running on the BLOB engine.

The paper motivates its whole-object extent design with S3's semantics
(Section III-A).  This example turns the analogy around: the engine
*implements* an object store — buckets, ETags, conditional gets, and a
multipart upload that assembles large objects via resumable-hash growth.

Run:  python examples/object_storage.py
"""

from repro import BlobDB, EngineConfig
from repro.objectstore import ObjectStore, PreconditionFailed


def main() -> None:
    db = BlobDB(EngineConfig(device_pages=32768, buffer_pool_pages=8192,
                             wal_pages=1024, catalog_pages=512))
    store = ObjectStore(db)
    store.create_bucket("backups")

    # -- simple puts/gets with free ETags -------------------------------
    info = store.put_object("backups", b"config.json",
                            b'{"retention_days": 30}')
    print(f"PUT config.json  size={info.size}  etag={info.etag[:16]}…")

    # Conditional GET: a cache revalidation costs one digest comparison.
    try:
        store.get_object("backups", b"config.json", if_none_match=info.etag)
    except PreconditionFailed:
        print("GET if-none-match -> 304 Not Modified (no content read)")

    # -- multipart upload of a large object --------------------------------
    upload = store.create_multipart_upload("backups", b"db-dump.tar")
    for i in range(5):
        part = bytes([i]) * 512_000  # 512 KB per part
        n = upload.upload_part(part)
        print(f"  uploaded part {n} ({len(part)} bytes)")
    dump = upload.complete()
    print(f"COMPLETE db-dump.tar  size={dump.size}  etag={dump.etag[:16]}…")

    # While uploading, the staging object was invisible:
    listing = [o.key.decode() for o in store.list_objects("backups")]
    print("bucket listing:", listing)

    # -- prefix listing ------------------------------------------------------
    for day in (b"2026-07-01", b"2026-07-02"):
        store.put_object("backups", b"logs/" + day + b".gz", b"\x1f\x8b logs")
    july = [o.key.decode()
            for o in store.list_objects("backups", prefix=b"logs/2026-07")]
    print("logs/2026-07*:", july)

    # -- durability is inherited from the engine ------------------------------
    recovered_db = BlobDB.recover(db.crash(), db.config)
    recovered = ObjectStore(recovered_db)
    dump_after = recovered.head_object("backups", b"db-dump.tar")
    assert dump_after.etag == dump.etag
    print(f"after crash: db-dump.tar intact (etag {dump_after.etag[:16]}…)")


if __name__ == "__main__":
    main()
