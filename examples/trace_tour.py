#!/usr/bin/env python3
"""Trace tour: watch the engine work, in deterministic virtual time.

Attaches a tracer to a live engine, runs a small mixed workload, and
shows the three export surfaces: the span-time summary, the collapsed
flamegraph stacks, and a Chrome trace you can open in Perfetto
(https://ui.perfetto.dev) or about:tracing.

Run:  python examples/trace_tour.py
"""

from repro import obs
from repro.db import BlobDB

OUT = "trace_tour.json"


def main() -> None:
    db = BlobDB()
    db.create_table("photos")
    tracer = obs.attach(db.model)

    # A put large enough to span several extent tiers...
    with db.transaction() as txn:
        db.put_blob(txn, "photos", b"sunset", b"\x89" * 300_000)
    # ...a read served by the pool, an append, a delete, a checkpoint.
    db.read_blob("photos", b"sunset")
    with db.transaction() as txn:
        db.append_blob(txn, "photos", b"sunset", b"\x00" * 4096)
    with db.transaction() as txn:
        db.put_blob(txn, "photos", b"thumb", b"\x10" * 2_000)
        db.delete_blob(txn, "photos", b"thumb")
    # Same-size put right after a delete: the allocator recycles the
    # freed extent (watch kind=reused in alloc.extents).
    with db.transaction() as txn:
        db.put_blob(txn, "photos", b"thumb2", b"\x11" * 2_000)
    db.checkpoint()

    print("== Where did virtual time go? ==")
    print(obs.format_span_summary(tracer))

    print()
    print("== Collapsed stacks (flamegraph input, exclusive ns) ==")
    for line in obs.to_collapsed_stacks(tracer).splitlines():
        print(" ", line)

    print()
    commits = tracer.metrics.counters["txn.commits"].total()
    wal_bytes = tracer.metrics.counters["wal.bytes_appended"].total()
    reused = tracer.metrics.counters["alloc.extents"].get(kind="reused")
    print(f"== Metrics: {commits} commits, {wal_bytes} WAL bytes, "
          f"{reused} extents recycled ==")
    p99 = tracer.metrics.histograms["span.txn.commit"].percentile(0.99)
    print(f"   txn.commit p99: {p99 / 1000:.1f} virtual us")

    # The finished trace is a host artifact; stamping it with host time
    # is fine exactly because the simulation is already over.
    import time

    with open(OUT, "w", encoding="utf-8") as fh:  # repro: allow[RPR004] host trace artifact
        fh.write(obs.to_chrome_trace(tracer, label="trace-tour"))
    stamp = int(time.time())  # repro: allow[RPR001] host-side provenance stamp, not simulated time
    print(f"\nwrote {OUT} ({len(tracer.events)} events, host unix time "
          f"{stamp}) — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
