#!/usr/bin/env python3
"""A document archive with content and semantic indexing (Section III-F).

Loads a synthetic Wikipedia corpus, indexes articles three ways, and
contrasts them:

* a **Blob State index** — full-content ordering without copying any
  content into the index;
* a **1 KB prefix index** — the MySQL/PostgreSQL-style baseline that
  collides on shared templates;
* a **semantic index** — ``CREATE INDEX ON archive(classify(content))``.

Run:  python examples/wikipedia_archive.py
"""

from repro import BlobDB, EngineConfig
from repro.db.index import BlobStateIndex, PrefixIndex, SemanticIndex
from repro.workloads.wikipedia import WikipediaCorpus


def classify(content: bytes) -> str:
    """A toy UDF: categorize articles by their lead-in."""
    if content.startswith(b"{{Infobox"):
        return "infobox"
    if content.startswith(b"#REDIRECT"):
        return "redirect"
    return "prose"


def main() -> None:
    corpus = WikipediaCorpus(n_articles=400, seed=2)
    config = EngineConfig(device_pages=65536, buffer_pool_pages=16384,
                          wal_pages=2048, catalog_pages=1024)
    db = BlobDB(config)
    db.create_table("archive")
    for article in corpus.articles:
        with db.transaction() as txn:
            db.put_blob(txn, "archive", article.title,
                        corpus.content(article))
    print(f"loaded {len(corpus.articles)} articles, "
          f"{corpus.total_bytes >> 20} MiB total")

    # -- Blob State index: every article findable by content --------------
    content_index = BlobStateIndex(db, "archive")
    content_index.build()
    probe = corpus.articles[123]
    hits = content_index.lookup_content(corpus.content(probe))
    print(f"content lookup for {probe.title.decode()}: {hits}")
    stats = content_index.stats()
    print(f"Blob State index: {len(content_index)} entries, "
          f"{stats.leaf_count} leaves, {stats.size_bytes >> 10} KiB "
          f"(no content copies)")

    # -- prefix-index baseline: shared templates collide -------------------
    prefix_index = PrefixIndex(db, "archive", prefix_bytes=1024)
    prefix_index.build()
    print(f"1K prefix index: {len(prefix_index)} entries, "
          f"{len(prefix_index.missed)} articles unindexable "
          f"({prefix_index.miss_fraction * 100:.1f}% miss)")

    # -- semantic index: SELECT * WHERE classify(content) = 'infobox' -------
    semantic = SemanticIndex(db, "archive", classify)
    semantic.build()
    infoboxes = semantic.lookup("infobox")
    print(f"semantic index: {len(infoboxes)} infobox articles, "
          f"{len(semantic.lookup('prose'))} prose articles")

    # Range query by content through the Blob State comparator.
    lo, hi = b"a", b"c"
    in_range = content_index.range_content(lo, hi)
    print(f"articles with content in [{lo!r}, {hi!r}): {len(in_range)}")


if __name__ == "__main__":
    main()
