"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (PEP 660 editable builds require it)."""
from setuptools import setup

setup()
